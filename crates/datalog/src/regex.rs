//! A small self-contained regular-expression engine.
//!
//! Vadalog delegates SPARQL's `REGEX` to the Java regex library (paper
//! §5.1, "Filter constraints"); our substitute is a compact backtracking
//! matcher supporting the subset that real-world SPARQL logs use (per
//! Bonifati et al.'s corpus): literals, `.`, character classes with ranges
//! and negation, the escapes `\d \w \s \D \W \S` and punctuation escapes,
//! anchors `^ $`, groups, alternation, and the quantifiers `* + ? {n} {n,}
//! {n,m}` (greedy, with backtracking).
//!
//! Matching is *unanchored* (SPARQL `REGEX` searches for a match anywhere)
//! unless anchors say otherwise. The `i` flag performs ASCII + Unicode
//! simple case folding via `char::to_lowercase`.

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    root: Node,
    case_insensitive: bool,
}

/// A regex syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex error: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

#[derive(Debug, Clone)]
enum Node {
    Empty,
    Char(char),
    Dot,
    Class {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
    Start,
    End,
    Seq(Vec<Node>),
    Alt(Vec<Node>),
    Repeat {
        node: Box<Node>,
        min: u32,
        max: Option<u32>,
    },
}

impl Regex {
    /// Compiles a pattern. `flags` currently understands `i`
    /// (case-insensitive); other flags are ignored, matching the paper's
    /// "partial support" stance.
    pub fn new(pattern: &str, flags: &str) -> Result<Self, RegexError> {
        let mut p = RegexParser {
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let root = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(RegexError(format!(
                "unexpected character at position {}",
                p.pos
            )));
        }
        Ok(Regex {
            root,
            case_insensitive: flags.contains('i'),
        })
    }

    /// True if the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = if self.case_insensitive {
            text.chars().flat_map(|c| c.to_lowercase()).collect()
        } else {
            text.chars().collect()
        };
        for start in 0..=chars.len() {
            if self.match_node(&self.root, &chars, start, &|_| true) {
                return true;
            }
        }
        false
    }

    /// Continuation-passing backtracking matcher: tries to match `node`
    /// starting at `pos`; on success calls `k` with the end position.
    fn match_node(
        &self,
        node: &Node,
        chars: &[char],
        pos: usize,
        k: &dyn Fn(usize) -> bool,
    ) -> bool {
        match node {
            Node::Empty => k(pos),
            Node::Char(c) => {
                let want = if self.case_insensitive {
                    c.to_lowercase().next().unwrap_or(*c)
                } else {
                    *c
                };
                pos < chars.len() && chars[pos] == want && k(pos + 1)
            }
            Node::Dot => pos < chars.len() && chars[pos] != '\n' && k(pos + 1),
            Node::Class { ranges, negated } => {
                if pos >= chars.len() {
                    return false;
                }
                let c = chars[pos];
                let mut hit = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
                if self.case_insensitive && !hit {
                    // Try the lowercase of the input against the ranges'
                    // lowercase, covering [A-Z] vs 'a' and vice versa.
                    hit = ranges.iter().any(|&(lo, hi)| {
                        let lo = lo.to_lowercase().next().unwrap_or(lo);
                        let hi = hi.to_lowercase().next().unwrap_or(hi);
                        c >= lo && c <= hi
                    });
                }
                (hit != *negated) && k(pos + 1)
            }
            Node::Start => pos == 0 && k(pos),
            Node::End => pos == chars.len() && k(pos),
            Node::Seq(nodes) => self.match_seq(nodes, chars, pos, k),
            Node::Alt(branches) => branches.iter().any(|b| self.match_node(b, chars, pos, k)),
            Node::Repeat { node, min, max } => {
                self.match_repeat(node, *min, *max, chars, pos, 0, k)
            }
        }
    }

    fn match_seq(
        &self,
        nodes: &[Node],
        chars: &[char],
        pos: usize,
        k: &dyn Fn(usize) -> bool,
    ) -> bool {
        match nodes.split_first() {
            None => k(pos),
            Some((first, rest)) => {
                self.match_node(first, chars, pos, &|p| self.match_seq(rest, chars, p, k))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn match_repeat(
        &self,
        node: &Node,
        min: u32,
        max: Option<u32>,
        chars: &[char],
        pos: usize,
        count: u32,
        k: &dyn Fn(usize) -> bool,
    ) -> bool {
        // Greedy: try one more repetition first (if allowed), then yield.
        let can_more = max.is_none_or(|m| count < m);
        if can_more
            && self.match_node(node, chars, pos, &|p| {
                // Zero-width progress guard: a repetition that consumed
                // nothing would loop forever.
                p > pos && self.match_repeat(node, min, max, chars, p, count + 1, k)
            })
        {
            return true;
        }
        count >= min && k(pos)
    }
}

struct RegexParser {
    chars: Vec<char>,
    pos: usize,
}

impl RegexParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_alt(&mut self) -> Result<Node, RegexError> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_seq()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Node::Alt(branches))
        }
    }

    fn parse_seq(&mut self) -> Result<Node, RegexError> {
        let mut nodes = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            nodes.push(self.parse_repeat()?);
        }
        match nodes.len() {
            0 => Ok(Node::Empty),
            1 => Ok(nodes.pop().unwrap()),
            _ => Ok(Node::Seq(nodes)),
        }
    }

    fn parse_repeat(&mut self) -> Result<Node, RegexError> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Node::Repeat {
                    node: Box::new(atom),
                    min: 0,
                    max: None,
                })
            }
            Some('+') => {
                self.bump();
                Ok(Node::Repeat {
                    node: Box::new(atom),
                    min: 1,
                    max: None,
                })
            }
            Some('?') => {
                self.bump();
                Ok(Node::Repeat {
                    node: Box::new(atom),
                    min: 0,
                    max: Some(1),
                })
            }
            Some('{') => {
                self.bump();
                let min = self.parse_int()?;
                let max = if self.peek() == Some(',') {
                    self.bump();
                    if self.peek() == Some('}') {
                        None
                    } else {
                        Some(self.parse_int()?)
                    }
                } else {
                    Some(min)
                };
                if self.bump() != Some('}') {
                    return Err(RegexError("expected '}'".into()));
                }
                if let Some(m) = max {
                    if m < min {
                        return Err(RegexError("quantifier max below min".into()));
                    }
                }
                Ok(Node::Repeat {
                    node: Box::new(atom),
                    min,
                    max,
                })
            }
            _ => Ok(atom),
        }
    }

    fn parse_int(&mut self) -> Result<u32, RegexError> {
        let mut n: u32 = 0;
        let mut seen = false;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                self.bump();
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(d))
                    .ok_or_else(|| RegexError("quantifier overflow".into()))?;
                seen = true;
            } else {
                break;
            }
        }
        if seen {
            Ok(n)
        } else {
            Err(RegexError("expected number in quantifier".into()))
        }
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            None => Err(RegexError("unexpected end of pattern".into())),
            Some('(') => {
                // Non-capturing group prefix `?:` is accepted and ignored.
                if self.peek() == Some('?') {
                    self.bump();
                    if self.bump() != Some(':') {
                        return Err(RegexError("only (?: groups supported".into()));
                    }
                }
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(RegexError("expected ')'".into()));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::Dot),
            Some('^') => Ok(Node::Start),
            Some('$') => Ok(Node::End),
            Some('\\') => self.parse_escape(),
            Some(c @ ('*' | '+' | '?' | '{' | '}' | ')')) => {
                Err(RegexError(format!("misplaced metacharacter {c:?}")))
            }
            Some(c) => Ok(Node::Char(c)),
        }
    }

    fn parse_escape(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            None => Err(RegexError("dangling backslash".into())),
            Some('d') => Ok(Node::Class {
                ranges: vec![('0', '9')],
                negated: false,
            }),
            Some('D') => Ok(Node::Class {
                ranges: vec![('0', '9')],
                negated: true,
            }),
            Some('w') => Ok(Node::Class {
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                negated: false,
            }),
            Some('W') => Ok(Node::Class {
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                negated: true,
            }),
            Some('s') => Ok(Node::Class {
                ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                negated: false,
            }),
            Some('S') => Ok(Node::Class {
                ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                negated: true,
            }),
            Some('n') => Ok(Node::Char('\n')),
            Some('t') => Ok(Node::Char('\t')),
            Some('r') => Ok(Node::Char('\r')),
            Some(c) => Ok(Node::Char(c)), // punctuation escapes: \. \\ \[ ...
        }
    }

    fn parse_class(&mut self) -> Result<Node, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let c = match self.bump() {
                None => return Err(RegexError("unterminated character class".into())),
                Some(']') if !ranges.is_empty() || negated => break,
                Some(']') => break, // empty class matches nothing
                Some('\\') => match self.bump() {
                    Some('d') => {
                        ranges.push(('0', '9'));
                        continue;
                    }
                    Some('w') => {
                        ranges.extend([('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]);
                        continue;
                    }
                    Some('s') => {
                        ranges.extend([(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')]);
                        continue;
                    }
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(c) => c,
                    None => return Err(RegexError("dangling backslash in class".into())),
                },
                Some(c) => c,
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']') {
                self.bump(); // '-'
                let hi = self
                    .bump()
                    .ok_or_else(|| RegexError("unterminated range".into()))?;
                if hi < c {
                    return Err(RegexError("inverted character range".into()));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        Ok(Node::Class { ranges, negated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat, "").unwrap().is_match(text)
    }

    fn mi(pat: &str, text: &str) -> bool {
        Regex::new(pat, "i").unwrap().is_match(text)
    }

    #[test]
    fn literal_search_is_unanchored() {
        assert!(m("bc", "abcd"));
        assert!(!m("bd", "abcd"));
        assert!(m("", "anything"));
    }

    #[test]
    fn anchors() {
        assert!(m("^ab", "abcd"));
        assert!(!m("^bc", "abcd"));
        assert!(m("cd$", "abcd"));
        assert!(!m("bc$", "abcd"));
        assert!(m("^abcd$", "abcd"));
        assert!(!m("^abcd$", "abcde"));
    }

    #[test]
    fn dot_and_classes() {
        assert!(m("a.c", "abc"));
        assert!(!m("a.c", "ac"));
        assert!(!m("a.c", "a\nc"));
        assert!(m("[abc]+", "cab"));
        assert!(m("[a-z0-9]+$", "abc123"));
        assert!(!m("^[^abc]+$", "xay"));
        assert!(m("^[^abc]+$", "xyz"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"\d{3}", "abc123"));
        assert!(!m(r"^\d+$", "12a"));
        assert!(m(r"\w+", "hello_world"));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m(r"\s", "a b"));
        assert!(m(r"^\S+$", "no-spaces"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
        assert!(m("a{2,3}", "aa"));
        assert!(m("^a{2,3}$", "aaa"));
        assert!(!m("^a{2,3}$", "aaaa"));
        assert!(m("^a{2}$", "aa"));
        assert!(m("^a{2,}$", "aaaaa"));
    }

    #[test]
    fn groups_and_alternation() {
        assert!(m("^(ab|cd)+$", "abcdab"));
        assert!(!m("^(ab|cd)+$", "abc"));
        assert!(m("col(o|ou)r", "colour"));
        assert!(m("col(?:o|ou)r", "color"));
    }

    #[test]
    fn case_insensitive_flag() {
        assert!(mi("journal", "JOURNAL of things"));
        assert!(mi("^[a-z]+$", "ABC"));
        assert!(!m("journal", "JOURNAL"));
    }

    #[test]
    fn backtracking_correctness() {
        // Requires giving back characters from the greedy star.
        assert!(m("^a*ab$", "aaab"));
        assert!(m("^(a|ab)c$", "abc"));
        assert!(m("^.*b$", "aaab"));
    }

    #[test]
    fn zero_width_repeat_terminates() {
        // (a?)* could loop forever without the progress guard.
        assert!(m("^(a?)*$", "aaa"));
        assert!(m("(|a)*", "b"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("a(", "").is_err());
        assert!(Regex::new("[abc", "").is_err());
        assert!(Regex::new("a{3,1}", "").is_err());
        assert!(Regex::new("*a", "").is_err());
        assert!(Regex::new("[z-a]", "").is_err());
        assert!(Regex::new("a{x}", "").is_err());
    }

    #[test]
    fn sp2bench_style_patterns() {
        // The kinds of patterns SP²Bench / FEASIBLE use.
        assert!(m("^http://", "http://example.org/x"));
        assert!(mi("article", "Journal Article 42"));
        assert!(m("[0-9][0-9][0-9][0-9]", "year 1995 ok"));
    }
}
