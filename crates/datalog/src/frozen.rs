//! Frozen database snapshots: the read-side half of the engine's
//! mutate/query lifecycle split.
//!
//! A [`FrozenDb`] is produced by [`Database::freeze`] after loading and
//! materialisation. Freezing is *profile-guided*: instead of eagerly
//! materialising all `2^arity - 1` per-mask indexes of every relation, it
//! promotes the lazily auto-built indexes that probes on the previous
//! snapshot actually demanded, plus the masks named by the caller's live
//! physical plans ([`Database::freeze_with_needs`] — the serving layer
//! passes the union of its plan cache's index needs). Everything else is
//! built on demand through the thread-safe per-mask `OnceLock` path
//! ([`Relation::lookup`] and the evaluator's shared-index fallback) and
//! promoted to a lock-free eager index at the *next* freeze. The snapshot
//! never mutates otherwise, so every accessor takes `&self` and it is
//! shared across threads behind one `Arc`.
//!
//! A snapshot also memoises its relation statistics ([`FrozenDb::stats`])
//! — the input of the cost-based planner ([`crate::plan`]) — collected
//! once on first use and warmed incrementally across the thaw/re-freeze
//! commit path ([`FrozenDb::warm_stats_from`]).
//!
//! Queries evaluate against a snapshot through an *overlay*
//! ([`Database::overlay`]): a fresh, initially empty database sharing the
//! snapshot's symbol table and term dictionary whose reads fall through
//! to the frozen base. Each concurrent query owns its overlay exclusively
//! (`&mut`), derives its answer predicates there, and drops it afterwards
//! — the base is never written. This is the same frozen-snapshot argument
//! that makes the PR 2 worker pool sound, reused one level up: *within* a
//! pass workers share an immutable database; *across* queries threads
//! share an immutable [`FrozenDb`].

use std::sync::{Arc, OnceLock};

use crate::database::{Database, Mask, Relation};
use crate::fxhash::FxHashMap;
use crate::stats::DbStats;
use crate::symbols::{Sym, SymbolTable};
use crate::value::TermDict;

/// Widest relation for which [`Relation::complete_indexes`] builds the
/// *complete* per-mask index set (`2^arity - 1` hash indexes) — the
/// exhaustive-indexing bound freezing used before the planner existed.
/// [`Database::freeze`] no longer builds them all: snapshots index
/// profile-guided (promoted lazy masks plus the masks live plans name),
/// and this constant remains for callers that want the old exhaustive
/// treatment explicitly.
pub const FULL_INDEX_MAX_ARITY: usize = 4;

/// An immutable, index-complete database snapshot, shared across threads
/// behind an `Arc`.
///
/// Produced by [`Database::freeze`]; queried either directly (all
/// accessors take `&self`) or through per-query overlays created with
/// [`Database::overlay`]. The symbol table and term dictionary remain the
/// live, shared, thread-safe ones — query translation and evaluation keep
/// interning new symbols and Skolem IDs into them concurrently.
pub struct FrozenDb {
    symbols: Arc<SymbolTable>,
    dict: Arc<TermDict>,
    relations: FxHashMap<Sym, Relation>,
    facts: usize,
    /// Planner statistics, collected once per snapshot on first use (or
    /// warmed from a predecessor at commit time).
    stats: OnceLock<Arc<DbStats>>,
}

impl FrozenDb {
    pub(crate) fn new(
        symbols: Arc<SymbolTable>,
        dict: Arc<TermDict>,
        relations: FxHashMap<Sym, Relation>,
    ) -> Self {
        let facts = relations.values().map(Relation::len).sum();
        FrozenDb {
            symbols,
            dict,
            relations,
            facts,
            stats: OnceLock::new(),
        }
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// The shared term dictionary.
    pub fn dict(&self) -> &Arc<TermDict> {
        &self.dict
    }

    /// The frozen relation for `pred`, if any facts exist.
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Iterates over `(predicate, relation)` pairs of the snapshot.
    pub fn relations(&self) -> impl Iterator<Item = (Sym, &Relation)> + '_ {
        self.relations.iter().map(|(&p, r)| (p, r))
    }

    /// Total number of facts in the snapshot.
    pub fn fact_count(&self) -> usize {
        self.facts
    }

    /// The snapshot's relation statistics (row counts, per-column
    /// distinct estimates) — the cost-based planner's input. Collected
    /// once on first use behind a `OnceLock` (cheap: one strided pass
    /// per relation) and shared from then on; the store's commit path
    /// pre-warms it incrementally via [`FrozenDb::warm_stats_from`].
    pub fn stats(&self) -> Arc<DbStats> {
        self.stats
            .get_or_init(|| Arc::new(DbStats::collect(self.relations())))
            .clone()
    }

    /// The memoised statistics, if already collected — commit paths use
    /// this to carry statistics forward without forcing a collection on
    /// snapshots nobody planned against.
    pub fn stats_if_ready(&self) -> Option<Arc<DbStats>> {
        self.stats.get().cloned()
    }

    /// Seeds this snapshot's statistics incrementally from a
    /// predecessor's: relations whose row counts are unchanged reuse the
    /// old entries, the rest are re-scanned ([`DbStats::refresh`]). A
    /// no-op if statistics were already collected.
    pub fn warm_stats_from(&self, prev: &DbStats) {
        let _ = self
            .stats
            .set(Arc::new(DbStats::refresh(self.relations(), prev)));
    }

    /// Melts a snapshot back into a mutable [`Database`] — the write
    /// half of the snapshot-refresh cycle (`freeze → thaw → mutate →
    /// freeze`).
    ///
    /// Every relation keeps its rows, dedup tables **and already-built
    /// eager indexes**: inserts maintain indexes incrementally, so a
    /// thawed database absorbs a delta and re-freezes without rebuilding
    /// the `2^arity - 1` per-mask indexes of untouched predicates
    /// ([`Database::freeze`]'s completion pass finds them all present
    /// and does nothing).
    ///
    /// When `this` is the last handle to the snapshot the relations are
    /// *moved* (no copy at all); while read snapshots are still live the
    /// relations are deep-copied ([`Relation::clone_for_write`]) and the
    /// readers keep serving the old snapshot untouched.
    pub fn thaw(this: Arc<FrozenDb>) -> Database {
        match Arc::try_unwrap(this) {
            Ok(owned) => Database {
                symbols: owned.symbols,
                dict: owned.dict,
                relations: owned.relations,
                base: None,
            },
            Err(shared) => Database {
                symbols: shared.symbols.clone(),
                dict: shared.dict.clone(),
                relations: shared
                    .relations
                    .iter()
                    .map(|(&p, r)| (p, r.clone_for_write()))
                    .collect(),
                base: None,
            },
        }
    }

    /// A canonical, order- and dictionary-independent rendering of the
    /// snapshot: one line per fact (decoded through the symbol table, so
    /// two snapshots with different interning histories compare equal)
    /// plus one line per eager index recording its mask and an integrity
    /// count (a complete index references every row exactly once).
    ///
    /// Two snapshots with equal signatures hold the same facts with the
    /// same index completeness — the differential re-freeze suite
    /// compares an incrementally committed snapshot against a
    /// from-scratch freeze of the same data this way.
    pub fn content_signature(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (pred, rel) in self.relations() {
            let name = self.symbols.resolve(pred);
            for row in rel.iter() {
                let rendered: Vec<String> = row
                    .iter()
                    .map(|&id| self.dict.decode(id).display(&self.symbols))
                    .collect();
                lines.push(format!("{name}({})", rendered.join(",")));
            }
            for mask in rel.index_masks() {
                lines.push(format!(
                    "@index {name} mask={mask:#b} rows={}/{}",
                    rel.indexed_rows(mask).unwrap_or(0),
                    rel.len()
                ));
            }
        }
        lines.sort_unstable();
        lines
    }
}

impl std::fmt::Debug for FrozenDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenDb")
            .field("relations", &self.relations.len())
            .field("facts", &self.facts)
            .finish()
    }
}

impl Database {
    /// Consumes the database into an immutable [`FrozenDb`] snapshot,
    /// shareable across threads behind the returned `Arc`.
    ///
    /// Indexing is *profile-guided*: already-built eager indexes are
    /// kept (inserts maintained them incrementally) and lazily
    /// auto-built ones — masks that real probes demanded on this data —
    /// are promoted to eager, lock-free indexes. Nothing else is built:
    /// a probe on a fresh mask auto-builds its index on first use
    /// through the thread-safe per-mask `OnceLock` path (the evaluator's
    /// shared-index fallback, or [`Relation::lookup`]), and the *next*
    /// freeze promotes it. Callers whose physical plans name the masks
    /// they will probe use [`Database::freeze_with_needs`] to have them
    /// eager from the start.
    ///
    /// Any frozen base this database was overlaid on is flattened into
    /// the snapshot (local copy-on-write relations shadow their base
    /// versions).
    pub fn freeze(self) -> Arc<FrozenDb> {
        self.freeze_with_needs(&[])
    }

    /// [`Database::freeze`], additionally building the named `(predicate,
    /// bound-position mask)` hash indexes eagerly — the serving layer
    /// passes the union of its cached physical plans' index needs, so
    /// every planned probe on the new snapshot is a lock-free eager-index
    /// hit from the first query on. Masks that do not fit the relation's
    /// arity (or name absent predicates) are ignored.
    pub fn freeze_with_needs(mut self, needs: &[(Sym, Mask)]) -> Arc<FrozenDb> {
        // Flatten an overlay: pull in base relations not shadowed locally.
        if let Some(base) = self.base.take() {
            for (pred, rel) in base.relations() {
                self.relations
                    .entry(pred)
                    .or_insert_with(|| rel.clone_for_write());
            }
        }
        for rel in self.relations.values_mut() {
            rel.promote_lazy_indexes();
        }
        for &(pred, mask) in needs {
            if let Some(rel) = self.relations.get_mut(&pred) {
                if mask != 0 && rel.arity() < 64 && mask < (1u64 << rel.arity()) {
                    rel.ensure_index(mask);
                }
            }
        }
        Arc::new(FrozenDb::new(self.symbols, self.dict, self.relations))
    }

    /// Creates a fresh overlay database on a frozen base: empty local
    /// state, shared symbol table and term dictionary, reads falling
    /// through to `base`.
    ///
    /// Writes stay local; a write to a predicate that exists in the base
    /// first copies the base relation in (copy-on-write), so dedup and
    /// semi-naive deltas see the full fact set. Query programs generated
    /// by the SPARQL translation never trigger the copy — their head
    /// predicates are namespaced per query.
    pub fn overlay(base: Arc<FrozenDb>) -> Database {
        Database::with_base(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, evaluate_frozen, EvalOptions};
    use crate::parser::parse_program;
    use crate::value::Const;

    fn edges_db() -> Database {
        let mut db = Database::new();
        let e = db.symbols().intern("edge");
        let rows: Vec<Vec<Const>> = (0..50)
            .map(|i| vec![Const::Int(i), Const::Int((i + 1) % 50)])
            .collect();
        db.load_rows(e, &rows);
        db
    }

    #[test]
    fn freeze_preserves_facts_and_builds_only_named_masks() {
        let frozen = edges_db().freeze();
        assert_eq!(frozen.fact_count(), 50);
        let e = frozen.symbols().get("edge").unwrap();
        let rel = frozen.relation(e).unwrap();
        // Profile-guided freezing builds nothing up front...
        assert!(rel.index_masks().is_empty(), "no eager masks were named");
        // ...but every lookup still answers exactly, through the lazy
        // auto-build path.
        for mask in 1u64..4 {
            let key = crate::database::project(rel.row(0), mask);
            assert_eq!(rel.lookup(mask, &key).len(), 1, "mask {mask:#b}");
        }

        // Naming a mask makes it eager from the start: a lock-free
        // borrowed-bucket hit.
        let frozen = edges_db().freeze_with_needs(&[(e, 0b01)]);
        let rel = frozen.relation(e).unwrap();
        assert_eq!(rel.index_masks(), vec![0b01]);
        assert!(
            matches!(
                rel.lookup(0b01, &crate::database::project(rel.row(0), 0b01)),
                crate::database::Matches::Borrowed(_)
            ),
            "named mask must be pre-built"
        );
        // Out-of-arity masks and unknown predicates are ignored.
        let ghost = frozen.symbols().intern("ghost");
        let frozen = edges_db().freeze_with_needs(&[(e, 0b1000), (ghost, 0b1)]);
        assert!(frozen.relation(e).unwrap().index_masks().is_empty());
    }

    #[test]
    fn overlay_reads_base_and_writes_locally() {
        let frozen = edges_db().freeze();
        let e = frozen.symbols().get("edge").unwrap();
        let mut overlay = Database::overlay(frozen.clone());
        assert_eq!(overlay.relation(e).unwrap().len(), 50, "base visible");
        let p = overlay.symbols().intern("local");
        overlay.add_fact_ids(p, &[overlay.dict().encode(&Const::Int(1))]);
        assert_eq!(overlay.fact_count(), 51);
        assert!(frozen.relation(p).is_none(), "base untouched");
    }

    #[test]
    fn overlay_copy_on_write_shadows_base() {
        let frozen = edges_db().freeze();
        let e = frozen.symbols().get("edge").unwrap();
        let mut overlay = Database::overlay(frozen.clone());
        let dup = [
            overlay.dict().encode(&Const::Int(0)),
            overlay.dict().encode(&Const::Int(1)),
        ];
        // Re-inserting a base fact must dedup against the copied rows.
        assert!(!overlay.add_fact_ids(e, &dup), "already present in base");
        let fresh = [
            overlay.dict().encode(&Const::Int(999)),
            overlay.dict().encode(&Const::Int(0)),
        ];
        assert!(overlay.add_fact_ids(e, &fresh));
        assert_eq!(overlay.relation(e).unwrap().len(), 51);
        assert_eq!(frozen.relation(e).unwrap().len(), 50, "base untouched");
    }

    #[test]
    fn evaluate_frozen_matches_mutable_evaluation() {
        let prog_src = "tc(X, Y) :- edge(X, Y).\n\
                        tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
                        @output(\"tc\").\n";
        // Mutable reference run.
        let mut plain = edges_db();
        let prog = parse_program(prog_src, plain.symbols()).unwrap();
        evaluate(&prog, &mut plain, &EvalOptions::default()).unwrap();
        let tc = plain.symbols().get("tc").unwrap();
        let expected = plain.relation(tc).unwrap().len();

        // Frozen run: same program over an overlay.
        let frozen = edges_db().freeze();
        let prog2 = parse_program(prog_src, frozen.symbols()).unwrap();
        let (overlay, _) = evaluate_frozen(&prog2, &frozen, &EvalOptions::default()).unwrap();
        let tc2 = frozen.symbols().get("tc").unwrap();
        assert_eq!(overlay.relation(tc2).unwrap().len(), expected);
        assert!(
            frozen.relation(tc2).is_none(),
            "derivations stay in overlay"
        );
    }

    #[test]
    fn thaw_unique_keeps_indexes_and_absorbs_delta() {
        let e = {
            let db = edges_db();
            db.symbols().get("edge").unwrap()
        };
        let frozen = edges_db().freeze_with_needs(&[(e, 0b01), (e, 0b10), (e, 0b11)]);
        let sig_before = frozen.content_signature();
        let db = FrozenDb::thaw(frozen); // unique: relations are moved
                                         // Indexes survived the thaw: all three masks still eager.
        assert_eq!(db.relation(e).unwrap().index_masks(), vec![1, 2, 3]);
        // Re-freezing without changes reproduces the same snapshot.
        let refrozen = db.freeze();
        assert_eq!(refrozen.content_signature(), sig_before);
        // ... and a delta keeps the indexes current through re-freeze.
        let mut db = FrozenDb::thaw(refrozen);
        let row = [
            db.dict().encode(&Const::Int(100)),
            db.dict().encode(&Const::Int(0)),
        ];
        assert!(db.add_fact_ids(e, &row));
        let again = db.freeze();
        let rel = again.relation(e).unwrap();
        assert_eq!(rel.len(), 51);
        for mask in 1u64..4 {
            assert_eq!(rel.indexed_rows(mask), Some(51), "mask {mask:#b}");
        }
    }

    #[test]
    fn lazily_built_masks_survive_thaw_and_refreeze() {
        let frozen = edges_db().freeze();
        let e = frozen.symbols().get("edge").unwrap();
        let rel = frozen.relation(e).unwrap();
        // A probe on the shared snapshot demands mask 0b10 lazily...
        let key = crate::database::project(rel.row(3), 0b10);
        assert_eq!(rel.lookup(0b10, &key).len(), 1);
        assert!(rel.index_masks().is_empty(), "still lazy, not eager");

        // ...and the thaw → re-freeze cycle promotes it to an eager
        // index, visible in the snapshot's content signature.
        let again = FrozenDb::thaw(frozen).freeze();
        let rel = again.relation(e).unwrap();
        assert_eq!(rel.index_masks(), vec![0b10], "probed mask promoted");
        assert_eq!(rel.indexed_rows(0b10), Some(50), "complete and current");
        let name = again.symbols().resolve(e);
        assert!(
            again
                .content_signature()
                .contains(&format!("@index {name} mask=0b10 rows=50/50")),
            "signature records the promoted index"
        );
    }

    #[test]
    fn thaw_shared_leaves_live_readers_untouched() {
        let frozen = edges_db().freeze();
        let reader = frozen.clone();
        let mut db = FrozenDb::thaw(frozen); // shared: relations are copied
        let e = db.symbols().get("edge").unwrap();
        let row = [
            db.dict().encode(&Const::Int(7)),
            db.dict().encode(&Const::Int(7)),
        ];
        db.add_fact_ids(e, &row);
        assert_eq!(db.relation(e).unwrap().len(), 51);
        assert_eq!(reader.relation(e).unwrap().len(), 50, "reader unchanged");
    }

    #[test]
    fn content_signature_detects_fact_and_index_differences() {
        let a = edges_db().freeze();
        let b = edges_db().freeze();
        assert_eq!(a.content_signature(), b.content_signature());
        let mut db = edges_db();
        let e = db.symbols().get("edge").unwrap();
        let row = [
            db.dict().encode(&Const::Int(999)),
            db.dict().encode(&Const::Int(0)),
        ];
        db.add_fact_ids(e, &row);
        assert_ne!(a.content_signature(), db.freeze().content_signature());
    }

    #[test]
    fn concurrent_overlays_share_one_snapshot() {
        let frozen = edges_db().freeze();
        let counts: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|k| {
                    let frozen = frozen.clone();
                    s.spawn(move || {
                        let src = format!(
                            "hop{k}(X, Z) :- edge(X, Y), edge(Y, Z).\n\
                             @output(\"hop{k}\").\n"
                        );
                        let prog = parse_program(&src, frozen.symbols()).unwrap();
                        let (db, _) = evaluate_frozen(
                            &prog,
                            &frozen,
                            &EvalOptions {
                                threads: Some(1),
                                ..Default::default()
                            },
                        )
                        .unwrap();
                        let p = frozen.symbols().get(&format!("hop{k}")).unwrap();
                        db.relation(p).map_or(0, Relation::len)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(counts.iter().all(|&c| c == 50), "{counts:?}");
    }
}
