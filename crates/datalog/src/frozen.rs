//! Frozen database snapshots: the read-side half of the engine's
//! mutate/query lifecycle split.
//!
//! A [`FrozenDb`] is produced by [`Database::freeze`] after loading and
//! materialisation. Freezing *index-completes* every relation — all
//! non-trivial bound-position masks up to [`FULL_INDEX_MAX_ARITY`] columns
//! are built eagerly (and any lazily auto-built index is promoted) — and
//! then never mutates again, so every accessor takes `&self` and the
//! snapshot can be shared across threads behind one `Arc`. For relations
//! within the full-indexing arity bound — which covers every predicate
//! the SPARQL data translation emits — the lazy `OnceLock` auto-index
//! path of [`Relation::lookup`] is dead (every mask a probe could ask
//! for already sits in the eager map) and reads are lock-free; a wider
//! relation probed on an unplanned mask still auto-builds its index
//! through the lazy path, which stays thread-safe on a shared snapshot.
//!
//! Queries evaluate against a snapshot through an *overlay*
//! ([`Database::overlay`]): a fresh, initially empty database sharing the
//! snapshot's symbol table and term dictionary whose reads fall through
//! to the frozen base. Each concurrent query owns its overlay exclusively
//! (`&mut`), derives its answer predicates there, and drops it afterwards
//! — the base is never written. This is the same frozen-snapshot argument
//! that makes the PR 2 worker pool sound, reused one level up: *within* a
//! pass workers share an immutable database; *across* queries threads
//! share an immutable [`FrozenDb`].

use std::sync::Arc;

use crate::database::{Database, Relation};
use crate::fxhash::FxHashMap;
use crate::symbols::{Sym, SymbolTable};
use crate::value::TermDict;

/// Widest relation that gets the *complete* per-mask index treatment at
/// freeze time (`2^arity - 1` hash indexes). The SPARQL data translation
/// tops out at `triple/4` (15 masks); relations wider than this keep
/// only the indexes that already exist plus promoted lazy ones —
/// evaluator scans on unindexed masks fall back to verified full scans,
/// and an external [`Relation::lookup`] on an unplanned mask auto-builds
/// through the thread-safe lazy path.
pub const FULL_INDEX_MAX_ARITY: usize = 4;

/// An immutable, index-complete database snapshot, shared across threads
/// behind an `Arc`.
///
/// Produced by [`Database::freeze`]; queried either directly (all
/// accessors take `&self`) or through per-query overlays created with
/// [`Database::overlay`]. The symbol table and term dictionary remain the
/// live, shared, thread-safe ones — query translation and evaluation keep
/// interning new symbols and Skolem IDs into them concurrently.
pub struct FrozenDb {
    symbols: Arc<SymbolTable>,
    dict: Arc<TermDict>,
    relations: FxHashMap<Sym, Relation>,
    facts: usize,
}

impl FrozenDb {
    pub(crate) fn new(
        symbols: Arc<SymbolTable>,
        dict: Arc<TermDict>,
        relations: FxHashMap<Sym, Relation>,
    ) -> Self {
        let facts = relations.values().map(Relation::len).sum();
        FrozenDb {
            symbols,
            dict,
            relations,
            facts,
        }
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// The shared term dictionary.
    pub fn dict(&self) -> &Arc<TermDict> {
        &self.dict
    }

    /// The frozen relation for `pred`, if any facts exist.
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Iterates over `(predicate, relation)` pairs of the snapshot.
    pub fn relations(&self) -> impl Iterator<Item = (Sym, &Relation)> + '_ {
        self.relations.iter().map(|(&p, r)| (p, r))
    }

    /// Total number of facts in the snapshot.
    pub fn fact_count(&self) -> usize {
        self.facts
    }

    /// Melts a snapshot back into a mutable [`Database`] — the write
    /// half of the snapshot-refresh cycle (`freeze → thaw → mutate →
    /// freeze`).
    ///
    /// Every relation keeps its rows, dedup tables **and already-built
    /// eager indexes**: inserts maintain indexes incrementally, so a
    /// thawed database absorbs a delta and re-freezes without rebuilding
    /// the `2^arity - 1` per-mask indexes of untouched predicates
    /// ([`Database::freeze`]'s completion pass finds them all present
    /// and does nothing).
    ///
    /// When `this` is the last handle to the snapshot the relations are
    /// *moved* (no copy at all); while read snapshots are still live the
    /// relations are deep-copied ([`Relation::clone_for_write`]) and the
    /// readers keep serving the old snapshot untouched.
    pub fn thaw(this: Arc<FrozenDb>) -> Database {
        match Arc::try_unwrap(this) {
            Ok(owned) => Database {
                symbols: owned.symbols,
                dict: owned.dict,
                relations: owned.relations,
                base: None,
            },
            Err(shared) => Database {
                symbols: shared.symbols.clone(),
                dict: shared.dict.clone(),
                relations: shared
                    .relations
                    .iter()
                    .map(|(&p, r)| (p, r.clone_for_write()))
                    .collect(),
                base: None,
            },
        }
    }

    /// A canonical, order- and dictionary-independent rendering of the
    /// snapshot: one line per fact (decoded through the symbol table, so
    /// two snapshots with different interning histories compare equal)
    /// plus one line per eager index recording its mask and an integrity
    /// count (a complete index references every row exactly once).
    ///
    /// Two snapshots with equal signatures hold the same facts with the
    /// same index completeness — the differential re-freeze suite
    /// compares an incrementally committed snapshot against a
    /// from-scratch freeze of the same data this way.
    pub fn content_signature(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (pred, rel) in self.relations() {
            let name = self.symbols.resolve(pred);
            for row in rel.iter() {
                let rendered: Vec<String> = row
                    .iter()
                    .map(|&id| self.dict.decode(id).display(&self.symbols))
                    .collect();
                lines.push(format!("{name}({})", rendered.join(",")));
            }
            for mask in rel.index_masks() {
                lines.push(format!(
                    "@index {name} mask={mask:#b} rows={}/{}",
                    rel.indexed_rows(mask).unwrap_or(0),
                    rel.len()
                ));
            }
        }
        lines.sort_unstable();
        lines
    }
}

impl std::fmt::Debug for FrozenDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenDb")
            .field("relations", &self.relations.len())
            .field("facts", &self.facts)
            .finish()
    }
}

impl Database {
    /// Consumes the database into an immutable, index-complete
    /// [`FrozenDb`] snapshot, shareable across threads behind the
    /// returned `Arc`.
    ///
    /// Every relation of width at most [`FULL_INDEX_MAX_ARITY`] gets all
    /// `2^arity - 1` per-mask hash indexes built eagerly (lazily
    /// auto-built ones are promoted rather than rebuilt), so concurrent
    /// query evaluation over those — every predicate the SPARQL
    /// translation emits — never takes the lazy `OnceLock` build path
    /// and reads lock-free. Freezing is the moment to pay that cost
    /// once: the snapshot is immutable, so no insert ever has to keep
    /// the extra indexes current. (A wider relation probed via
    /// [`Relation::lookup`] on an unplanned mask still auto-builds
    /// lazily; that path is thread-safe on the shared snapshot.)
    ///
    /// Any frozen base this database was overlaid on is flattened into
    /// the snapshot (local copy-on-write relations shadow their base
    /// versions).
    pub fn freeze(mut self) -> Arc<FrozenDb> {
        // Flatten an overlay: pull in base relations not shadowed locally.
        if let Some(base) = self.base.take() {
            for (pred, rel) in base.relations() {
                self.relations
                    .entry(pred)
                    .or_insert_with(|| rel.clone_for_write());
            }
        }
        for rel in self.relations.values_mut() {
            rel.complete_indexes(FULL_INDEX_MAX_ARITY);
        }
        Arc::new(FrozenDb::new(self.symbols, self.dict, self.relations))
    }

    /// Creates a fresh overlay database on a frozen base: empty local
    /// state, shared symbol table and term dictionary, reads falling
    /// through to `base`.
    ///
    /// Writes stay local; a write to a predicate that exists in the base
    /// first copies the base relation in (copy-on-write), so dedup and
    /// semi-naive deltas see the full fact set. Query programs generated
    /// by the SPARQL translation never trigger the copy — their head
    /// predicates are namespaced per query.
    pub fn overlay(base: Arc<FrozenDb>) -> Database {
        Database::with_base(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, evaluate_frozen, EvalOptions};
    use crate::parser::parse_program;
    use crate::value::Const;

    fn edges_db() -> Database {
        let mut db = Database::new();
        let e = db.symbols().intern("edge");
        let rows: Vec<Vec<Const>> = (0..50)
            .map(|i| vec![Const::Int(i), Const::Int((i + 1) % 50)])
            .collect();
        db.load_rows(e, &rows);
        db
    }

    #[test]
    fn freeze_preserves_facts_and_completes_indexes() {
        let db = edges_db();
        let frozen = db.freeze();
        assert_eq!(frozen.fact_count(), 50);
        let e = frozen.symbols().get("edge").unwrap();
        let rel = frozen.relation(e).unwrap();
        // All three non-trivial masks of a binary relation are eager.
        for mask in 1u64..4 {
            assert!(
                matches!(
                    rel.lookup(mask, &crate::database::project(rel.row(0), mask)),
                    crate::database::Matches::Borrowed(_)
                ),
                "mask {mask:#b} must be pre-built"
            );
        }
    }

    #[test]
    fn overlay_reads_base_and_writes_locally() {
        let frozen = edges_db().freeze();
        let e = frozen.symbols().get("edge").unwrap();
        let mut overlay = Database::overlay(frozen.clone());
        assert_eq!(overlay.relation(e).unwrap().len(), 50, "base visible");
        let p = overlay.symbols().intern("local");
        overlay.add_fact_ids(p, &[overlay.dict().encode(&Const::Int(1))]);
        assert_eq!(overlay.fact_count(), 51);
        assert!(frozen.relation(p).is_none(), "base untouched");
    }

    #[test]
    fn overlay_copy_on_write_shadows_base() {
        let frozen = edges_db().freeze();
        let e = frozen.symbols().get("edge").unwrap();
        let mut overlay = Database::overlay(frozen.clone());
        let dup = [
            overlay.dict().encode(&Const::Int(0)),
            overlay.dict().encode(&Const::Int(1)),
        ];
        // Re-inserting a base fact must dedup against the copied rows.
        assert!(!overlay.add_fact_ids(e, &dup), "already present in base");
        let fresh = [
            overlay.dict().encode(&Const::Int(999)),
            overlay.dict().encode(&Const::Int(0)),
        ];
        assert!(overlay.add_fact_ids(e, &fresh));
        assert_eq!(overlay.relation(e).unwrap().len(), 51);
        assert_eq!(frozen.relation(e).unwrap().len(), 50, "base untouched");
    }

    #[test]
    fn evaluate_frozen_matches_mutable_evaluation() {
        let prog_src = "tc(X, Y) :- edge(X, Y).\n\
                        tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
                        @output(\"tc\").\n";
        // Mutable reference run.
        let mut plain = edges_db();
        let prog = parse_program(prog_src, plain.symbols()).unwrap();
        evaluate(&prog, &mut plain, &EvalOptions::default()).unwrap();
        let tc = plain.symbols().get("tc").unwrap();
        let expected = plain.relation(tc).unwrap().len();

        // Frozen run: same program over an overlay.
        let frozen = edges_db().freeze();
        let prog2 = parse_program(prog_src, frozen.symbols()).unwrap();
        let (overlay, _) = evaluate_frozen(&prog2, &frozen, &EvalOptions::default()).unwrap();
        let tc2 = frozen.symbols().get("tc").unwrap();
        assert_eq!(overlay.relation(tc2).unwrap().len(), expected);
        assert!(
            frozen.relation(tc2).is_none(),
            "derivations stay in overlay"
        );
    }

    #[test]
    fn thaw_unique_keeps_indexes_and_absorbs_delta() {
        let frozen = edges_db().freeze();
        let sig_before = frozen.content_signature();
        let db = FrozenDb::thaw(frozen); // unique: relations are moved
        let e = db.symbols().get("edge").unwrap();
        // Indexes survived the thaw: all three masks still eager.
        assert_eq!(db.relation(e).unwrap().index_masks(), vec![1, 2, 3]);
        // Re-freezing without changes reproduces the same snapshot.
        let refrozen = db.freeze();
        assert_eq!(refrozen.content_signature(), sig_before);
        // ... and a delta keeps the indexes current through re-freeze.
        let mut db = FrozenDb::thaw(refrozen);
        let row = [
            db.dict().encode(&Const::Int(100)),
            db.dict().encode(&Const::Int(0)),
        ];
        assert!(db.add_fact_ids(e, &row));
        let again = db.freeze();
        let rel = again.relation(e).unwrap();
        assert_eq!(rel.len(), 51);
        for mask in 1u64..4 {
            assert_eq!(rel.indexed_rows(mask), Some(51), "mask {mask:#b}");
        }
    }

    #[test]
    fn thaw_shared_leaves_live_readers_untouched() {
        let frozen = edges_db().freeze();
        let reader = frozen.clone();
        let mut db = FrozenDb::thaw(frozen); // shared: relations are copied
        let e = db.symbols().get("edge").unwrap();
        let row = [
            db.dict().encode(&Const::Int(7)),
            db.dict().encode(&Const::Int(7)),
        ];
        db.add_fact_ids(e, &row);
        assert_eq!(db.relation(e).unwrap().len(), 51);
        assert_eq!(reader.relation(e).unwrap().len(), 50, "reader unchanged");
    }

    #[test]
    fn content_signature_detects_fact_and_index_differences() {
        let a = edges_db().freeze();
        let b = edges_db().freeze();
        assert_eq!(a.content_signature(), b.content_signature());
        let mut db = edges_db();
        let e = db.symbols().get("edge").unwrap();
        let row = [
            db.dict().encode(&Const::Int(999)),
            db.dict().encode(&Const::Int(0)),
        ];
        db.add_fact_ids(e, &row);
        assert_ne!(a.content_signature(), db.freeze().content_signature());
    }

    #[test]
    fn concurrent_overlays_share_one_snapshot() {
        let frozen = edges_db().freeze();
        let counts: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|k| {
                    let frozen = frozen.clone();
                    s.spawn(move || {
                        let src = format!(
                            "hop{k}(X, Z) :- edge(X, Y), edge(Y, Z).\n\
                             @output(\"hop{k}\").\n"
                        );
                        let prog = parse_program(&src, frozen.symbols()).unwrap();
                        let (db, _) = evaluate_frozen(
                            &prog,
                            &frozen,
                            &EvalOptions {
                                threads: Some(1),
                                ..Default::default()
                            },
                        )
                        .unwrap();
                        let p = frozen.symbols().get(&format!("hop{k}")).unwrap();
                        db.relation(p).map_or(0, Relation::len)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(counts.iter().all(|&c| c == 50), "{counts:?}");
    }
}
