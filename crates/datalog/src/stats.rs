//! Relation statistics backing the cost-based join planner.
//!
//! [`DbStats`] snapshots per-relation row counts and per-column
//! distinct-count estimates over the dictionary-encoded
//! [`TermId`](crate::value::TermId) columns. Collection is a single pass
//! over each relation's flat `Copy` rows (strided sampling above
//! [`SAMPLE_LIMIT`] rows), performed once per frozen snapshot —
//! [`FrozenDb::stats`](crate::frozen::FrozenDb::stats) memoises the
//! result behind a `OnceLock` — and maintained incrementally across the
//! store's thaw/re-freeze commit path: [`DbStats::refresh`] reuses the
//! entries of relations whose row counts did not change, so a commit
//! touching one predicate re-scans only that predicate.
//!
//! The planner ([`crate::plan`]) turns these into selectivity estimates:
//! probing relation `R` with bound-position mask `m` is estimated to
//! return `rows(R) / Π_{i∈m} distinct(R, i)` tuples — the classic
//! independence assumption. [`StatsFingerprint`] records the row counts a
//! plan was based on, so a cached physical plan can detect when
//! commit-time statistics have drifted past the replan threshold.

use crate::database::{Mask, Relation};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::rule::{BodyItem, Program};
use crate::symbols::Sym;

/// Relations with more rows than this estimate distinct counts from an
/// evenly strided sample instead of a full pass, bounding the cost of
/// statistics collection on large stores.
pub const SAMPLE_LIMIT: usize = 1 << 16;

/// Sample cap for the mutable path's inline planning pass
/// ([`EvalOptions::plan`](crate::eval::EvalOptions::plan) with no
/// caller-supplied plan). Greedy join ordering only needs coarse
/// distinct estimates, so the per-call statistics pass is bounded far
/// more tightly than the once-per-snapshot collection memoised behind
/// [`FrozenDb::stats`](crate::frozen::FrozenDb::stats).
pub const INLINE_SAMPLE_LIMIT: usize = 512;

/// Row count assumed for predicates without statistics (typically
/// intermediate IDB predicates that are still empty at planning time).
pub const UNKNOWN_ROWS: f64 = 1024.0;

/// Per-column distinct count assumed for predicates without statistics:
/// every bound position divides the estimate by this, so atoms with more
/// bound positions still order first even without data.
pub const UNKNOWN_DISTINCT: f64 = 32.0;

/// Replanning threshold: a cached plan is invalidated when a read
/// relation's row count changes by more than a factor of two, with an
/// absolute slack of this many rows so small stores don't thrash.
pub const DRIFT_SLACK_ROWS: usize = 64;

/// Row count and per-column distinct-count estimates of one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelStats {
    /// Number of tuples.
    pub rows: usize,
    /// Estimated distinct values per column (length = arity).
    pub distinct: Vec<usize>,
}

impl RelStats {
    /// Collects statistics for one relation in a single pass over its
    /// flat rows (strided sampling above [`SAMPLE_LIMIT`] rows).
    pub fn collect(rel: &Relation) -> RelStats {
        RelStats::collect_sampled(rel, SAMPLE_LIMIT)
    }

    /// [`RelStats::collect`] with an explicit sample cap: at most
    /// `sample_limit` evenly strided rows contribute to the distinct
    /// estimates (the row count is always exact).
    pub fn collect_sampled(rel: &Relation, sample_limit: usize) -> RelStats {
        let arity = rel.arity();
        let rows = rel.len();
        let mut sets: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); arity];
        let stride = rows.div_ceil(sample_limit.max(1)).max(1);
        let mut sampled = 0usize;
        let mut i = 0usize;
        while i < rows {
            let row = rel.row(i as u32);
            for (set, &id) in sets.iter_mut().zip(row) {
                set.insert(id.raw());
            }
            sampled += 1;
            i += stride;
        }
        let distinct = sets
            .iter()
            .map(|set| {
                let d = set.len().max(1);
                // A mostly-distinct sample (key-like column) scales to the
                // full relation; a low-cardinality column's sample already
                // saw (nearly) every value and is kept as-is.
                if sampled < rows && d * 2 > sampled {
                    (d * rows / sampled.max(1)).min(rows)
                } else {
                    d
                }
            })
            .collect();
        RelStats { rows, distinct }
    }

    /// Estimated number of tuples a probe with bound-position mask `mask`
    /// returns: `rows / Π distinct(i)` over the bound columns, assuming
    /// column independence. `mask = 0` estimates the full scan.
    pub fn estimate(&self, mask: Mask) -> f64 {
        let mut est = self.rows as f64;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            est /= self.distinct.get(i).copied().unwrap_or(1).max(1) as f64;
            m &= m - 1;
        }
        est
    }
}

/// Per-relation statistics for one database snapshot.
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    rels: FxHashMap<Sym, RelStats>,
}

impl DbStats {
    /// Collects statistics over `(predicate, relation)` pairs.
    pub fn collect<'a>(rels: impl Iterator<Item = (Sym, &'a Relation)>) -> DbStats {
        DbStats::collect_sampled(rels, SAMPLE_LIMIT)
    }

    /// [`DbStats::collect`] with an explicit per-relation sample cap —
    /// the mutable path plans inline with [`INLINE_SAMPLE_LIMIT`] so a
    /// per-call statistics pass stays cheap on small hot evaluations.
    pub fn collect_sampled<'a>(
        rels: impl Iterator<Item = (Sym, &'a Relation)>,
        sample_limit: usize,
    ) -> DbStats {
        DbStats {
            rels: rels
                .map(|(p, r)| (p, RelStats::collect_sampled(r, sample_limit)))
                .collect(),
        }
    }

    /// Incremental refresh across a thaw/re-freeze cycle: reuses `prev`'s
    /// entry for every relation whose row count (and arity) is unchanged
    /// and re-scans only the rest. A removal+insertion pair that leaves
    /// the row count identical keeps the old distinct estimates — they
    /// are estimates, and the next drifting commit recollects them.
    pub fn refresh<'a>(rels: impl Iterator<Item = (Sym, &'a Relation)>, prev: &DbStats) -> DbStats {
        DbStats {
            rels: rels
                .map(|(p, r)| match prev.rels.get(&p) {
                    Some(s) if s.rows == r.len() && s.distinct.len() == r.arity() => (p, s.clone()),
                    _ => (p, RelStats::collect(r)),
                })
                .collect(),
        }
    }

    /// The statistics of `pred`'s relation, if present in the snapshot.
    pub fn relation(&self, pred: Sym) -> Option<&RelStats> {
        self.rels.get(&pred)
    }

    /// Number of relations covered.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// True if no relation has statistics.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Estimated result cardinality of probing `pred` with bound-position
    /// mask `mask`. Predicates without statistics get the
    /// [`UNKNOWN_ROWS`] / [`UNKNOWN_DISTINCT`] defaults.
    pub fn estimate(&self, pred: Sym, mask: Mask) -> f64 {
        match self.rels.get(&pred) {
            Some(rs) => rs.estimate(mask),
            None => UNKNOWN_ROWS / UNKNOWN_DISTINCT.powi(mask.count_ones() as i32),
        }
    }

    /// A drift fingerprint over the predicates `program` reads (positive
    /// and negated body atoms): the row counts the plan was based on.
    pub fn fingerprint(&self, program: &Program) -> StatsFingerprint {
        let mut preds: Vec<Sym> = Vec::new();
        for rule in &program.rules {
            for item in &rule.body {
                if let BodyItem::Pos(a) | BodyItem::Neg(a) = item {
                    if !preds.contains(&a.pred) {
                        preds.push(a.pred);
                    }
                }
            }
        }
        preds.sort_unstable();
        StatsFingerprint {
            rows: preds
                .into_iter()
                .map(|p| (p, self.rels.get(&p).map_or(0, |s| s.rows)))
                .collect(),
        }
    }
}

/// The row counts a physical plan was computed against — the plan cache's
/// invalidation key ([`DbStats::fingerprint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsFingerprint {
    rows: Vec<(Sym, usize)>,
}

impl StatsFingerprint {
    /// True when any fingerprinted relation's row count in `current` has
    /// drifted past the replan threshold (factor of two, with
    /// [`DRIFT_SLACK_ROWS`] absolute slack).
    pub fn drifted(&self, current: &DbStats) -> bool {
        self.rows.iter().any(|&(p, old)| {
            let new = current.rels.get(&p).map_or(0, |s| s.rows);
            let (lo, hi) = (old.min(new), old.max(new));
            hi > 2 * lo + DRIFT_SLACK_ROWS
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::parser::parse_program;
    use crate::value::Const;

    fn db_with(rows: &[(i64, i64)]) -> (Database, Sym) {
        let mut db = Database::new();
        let p = db.symbols().intern("p");
        let rows: Vec<Vec<Const>> = rows
            .iter()
            .map(|&(a, b)| vec![Const::Int(a), Const::Int(b)])
            .collect();
        db.load_rows(p, &rows);
        (db, p)
    }

    #[test]
    fn collects_rows_and_distincts() {
        let (db, p) = db_with(&[(1, 10), (1, 20), (2, 30), (2, 40), (2, 50)]);
        let s = RelStats::collect(db.relation(p).unwrap());
        assert_eq!(s.rows, 5);
        assert_eq!(s.distinct, vec![2, 5]);
        // Probing column 0 (2 distinct values over 5 rows) ≈ 2.5 rows.
        assert!((s.estimate(0b01) - 2.5).abs() < 1e-9);
        // Probing column 1 (key-like) ≈ 1 row.
        assert!((s.estimate(0b10) - 1.0).abs() < 1e-9);
        assert!((s.estimate(0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_predicates_get_defaults() {
        let stats = DbStats::default();
        let p = crate::symbols::SymbolTable::new().intern("q");
        assert!((stats.estimate(p, 0) - UNKNOWN_ROWS).abs() < 1e-9);
        assert!(stats.estimate(p, 0b11) < stats.estimate(p, 0b01));
    }

    #[test]
    fn refresh_reuses_unchanged_and_rescans_grown() {
        let (mut db, p) = db_with(&[(1, 10), (2, 20)]);
        let q = db.symbols().intern("q");
        db.add_fact(q, vec![Const::Int(7)]);
        let before = DbStats::collect(db.relations());
        // Grow q only; p's entry must be reused, q's recollected.
        db.add_fact(q, vec![Const::Int(8)]);
        let after = DbStats::refresh(db.relations(), &before);
        assert_eq!(after.relation(p), before.relation(p));
        assert_eq!(after.relation(q).unwrap().rows, 2);
    }

    #[test]
    fn fingerprint_drift_threshold() {
        let (db, p) = db_with(&[(1, 10), (2, 20)]);
        let symbols = db.symbols().clone();
        let prog = parse_program("out(X) :- p(X, Y).\n@output(\"out\").\n", &symbols).unwrap();
        let stats = DbStats::collect(db.relations());
        let fp = stats.fingerprint(&prog);
        assert!(!fp.drifted(&stats), "identical stats never drift");

        // Small absolute growth stays under the slack.
        let (db2, _) = db_with(&[(1, 10), (2, 20), (3, 30)]);
        assert!(!fp.drifted(&DbStats::collect(db2.relations())));

        // Large growth past 2x + slack forces a replan.
        let big: Vec<(i64, i64)> = (0..200).map(|i| (i, i)).collect();
        let (db3, _) = db_with(&big);
        assert!(fp.drifted(&DbStats::collect(db3.relations())));
        let _ = p;
    }

    #[test]
    fn sampling_caps_collection_cost() {
        let mut db = Database::new();
        let p = db.symbols().intern("p");
        // The low-cardinality column's period is coprime to the sample
        // stride, so the strided sample still sees every value.
        let rows: Vec<Vec<Const>> = (0..(SAMPLE_LIMIT as i64 * 2))
            .map(|i| vec![Const::Int(i), Const::Int(i % 13)])
            .collect();
        db.load_rows(p, &rows);
        let s = RelStats::collect(db.relation(p).unwrap());
        assert_eq!(s.rows, SAMPLE_LIMIT * 2);
        // The key-like column scales to ~rows; the 13-value column is
        // seen exactly.
        assert!(s.distinct[0] > SAMPLE_LIMIT);
        assert_eq!(s.distinct[1], 13);
    }
}
