//! The cost-based physical planner: statistics-driven join ordering.
//!
//! Sitting between translation and evaluation, [`plan_program`] computes
//! for every rule body an evaluation order by greedy selectivity search:
//! starting from the bound set (constants, then variables bound by
//! already-placed atoms), it repeatedly places the positive atom with the
//! smallest estimated probe cardinality ([`DbStats::estimate`] — rows
//! divided by the distinct counts of the bound positions), and pushes
//! filter conditions, assignments and negation checks to the earliest
//! position at which all their variables are bound. Each placed atom also
//! records the exact `(pred, mask)` hash index its probe will use, so a
//! frozen snapshot can build precisely the indexes live plans name
//! instead of all `2^arity - 1` masks.
//!
//! Semi-naive delta variants get their own orders (one per positive body
//! occurrence of a stratum-written predicate) with the delta atom pinned
//! first — the delta-first constraint of semi-naive evaluation — and the
//! rest ordered by the same greedy search.
//!
//! The orders are *advice*: [`crate::eval`]'s `compile_rule` recomputes
//! masks and re-verifies rule safety from whatever order it is handed, so
//! a stale or mismatched plan can cost performance but never correctness.

use crate::database::Mask;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::rule::{AtomArg, BodyItem, Program, Rule};
use crate::stats::DbStats;
use crate::stratify::{stratify, StratifyError};
use crate::symbols::{Sym, SymbolTable};

/// The planned probe of one positive body atom.
#[derive(Debug, Clone)]
pub struct AtomPlan {
    /// Index of the atom in the rule's body (source position).
    pub item_idx: usize,
    /// The probed predicate.
    pub pred: Sym,
    /// Bound-position mask of the probe (0 = full scan; for a pinned
    /// delta atom the scan is batch-driven and the mask is 0).
    pub mask: Mask,
    /// Estimated probe output cardinality at planning time.
    pub estimate: f64,
}

/// A planned evaluation order for one rule body.
#[derive(Debug, Clone)]
pub struct RuleOrder {
    /// Body item indices in evaluation order (all items, not only atoms).
    pub order: Vec<usize>,
    /// Probe plans of the positive atoms, in evaluation order.
    pub atoms: Vec<AtomPlan>,
}

/// A physical plan for a program: per-rule body orders for the naive
/// pass, per-`(rule, delta occurrence)` orders for the semi-naive
/// rounds, and the index masks they probe.
#[derive(Debug, Clone)]
pub struct ProgramPlan {
    /// One order per program rule (parallel to `program.rules`).
    pub rules: Vec<RuleOrder>,
    /// Delta-variant orders, keyed by `(rule index, body item index of
    /// the delta occurrence)`.
    pub delta: FxHashMap<(usize, usize), RuleOrder>,
}

impl ProgramPlan {
    /// The distinct `(pred, mask)` hash indexes the plan's probes use —
    /// what a frozen snapshot needs eagerly built for this plan to run
    /// at full speed.
    pub fn index_needs(&self) -> Vec<(Sym, Mask)> {
        let mut out: Vec<(Sym, Mask)> = Vec::new();
        let atoms = self
            .rules
            .iter()
            .chain(self.delta.values())
            .flat_map(|r| r.atoms.iter());
        for a in atoms {
            if a.mask != 0 && !out.contains(&(a.pred, a.mask)) {
                out.push((a.pred, a.mask));
            }
        }
        out
    }

    /// Renders the plan for humans: per rule the chosen atom order, probe
    /// masks and cardinality estimates — the payload of the serving
    /// layer's `explain`.
    pub fn render(&self, program: &Program, symbols: &SymbolTable) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (ri, (rule, ro)) in program.rules.iter().zip(&self.rules).enumerate() {
            let _ = writeln!(out, "rule {ri}: {}", rule.display(symbols));
            render_order(&mut out, ro);
            for ((r2, di), dro) in self.delta.iter().filter(|((r2, _), _)| *r2 == ri) {
                let _ = writeln!(out, "  delta variant (rule {r2}, body item {di}):");
                render_order(&mut out, dro);
            }
        }
        out
    }
}

fn render_order(out: &mut String, ro: &RuleOrder) {
    use std::fmt::Write;
    let _ = writeln!(out, "  order: {:?}", ro.order);
    for a in &ro.atoms {
        let _ = writeln!(
            out,
            "    probe item {} mask={:#b} est={:.1}",
            a.item_idx, a.mask, a.estimate
        );
    }
}

/// Plans every rule of `program` against `stats`: greedy selectivity
/// ordering for the naive pass plus delta-pinned variants for the
/// semi-naive rounds. Fails only if the program does not stratify (the
/// same error evaluation itself would report).
pub fn plan_program(
    program: &Program,
    symbols: &SymbolTable,
    stats: &DbStats,
) -> Result<ProgramPlan, StratifyError> {
    let strat = stratify(program, symbols)?;
    let rules = program
        .rules
        .iter()
        .map(|r| order_body(r, stats, None))
        .collect();
    let mut delta = FxHashMap::default();
    for stratum in &strat.strata {
        let writes: FxHashSet<Sym> = strat.stratum_writes(stratum).into_iter().collect();
        for &ri in stratum {
            let rule = &program.rules[ri];
            if rule.aggregate.is_some() {
                continue;
            }
            for di in rule.positive_occurrences_of(&writes) {
                delta.insert((ri, di), order_body(rule, stats, Some(di)));
            }
        }
    }
    Ok(ProgramPlan { rules, delta })
}

/// True when a non-atom body item's variables are all bound.
fn ready(item: &BodyItem, bound: &[bool]) -> bool {
    match item {
        BodyItem::Cond(e) | BodyItem::Assign(_, e) => {
            let mut vs = Vec::new();
            e.collect_vars(&mut vs);
            vs.iter().all(|&v| bound[v as usize])
        }
        BodyItem::Neg(a) => a.vars().iter().all(|&v| bound[v as usize]),
        BodyItem::Pos(_) => false,
    }
}

/// The bound-position mask an atom would probe with under `bound`.
fn bound_mask(atom: &crate::rule::Atom, bound: &[bool]) -> Mask {
    let mut mask: Mask = 0;
    for (i, arg) in atom.args.iter().enumerate() {
        match arg {
            AtomArg::Const(_) => mask |= 1 << i,
            AtomArg::Var(v) => {
                if bound[*v as usize] {
                    mask |= 1 << i;
                }
            }
        }
    }
    mask
}

/// Greedy selectivity ordering of one rule body. With `pinned =
/// Some(di)`, body item `di` (the delta occurrence) is placed first —
/// its scan is driven by the delta batch, not an index probe.
fn order_body(rule: &Rule, stats: &DbStats, pinned: Option<usize>) -> RuleOrder {
    let n = rule.body.len();
    let mut bound = vec![false; rule.var_names.len()];
    let mut order = Vec::with_capacity(n);
    let mut atoms = Vec::new();
    let mut remaining: Vec<usize> = (0..n).collect();

    if let Some(di) = pinned {
        remaining.retain(|&i| i != di);
        if let BodyItem::Pos(a) = &rule.body[di] {
            for v in a.vars() {
                bound[v as usize] = true;
            }
            atoms.push(AtomPlan {
                item_idx: di,
                pred: a.pred,
                mask: 0,
                estimate: 0.0,
            });
        }
        order.push(di);
    }

    while !remaining.is_empty() {
        // Filters, assignments and negation checks run as soon as their
        // variables are bound (earliest evaluable position, source order
        // among the simultaneously ready).
        if let Some(k) = remaining.iter().position(|&i| ready(&rule.body[i], &bound)) {
            let i = remaining.remove(k);
            if let BodyItem::Assign(v, _) = &rule.body[i] {
                bound[*v as usize] = true;
            }
            order.push(i);
            continue;
        }
        // Otherwise the positive atom with the smallest estimated probe
        // cardinality under the current bound set. `remaining` is in
        // ascending source order and `min_by` keeps the first minimum,
        // so exact ties resolve to source order.
        let (k, mask, est) = remaining
            .iter()
            .enumerate()
            .filter_map(|(k, &i)| match &rule.body[i] {
                BodyItem::Pos(a) => {
                    let mask = bound_mask(a, &bound);
                    Some((k, mask, stats.estimate(a.pred, mask)))
                }
                _ => None,
            })
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .expect("unplaced non-atom item has variables no remaining atom binds");
        let i = remaining.remove(k);
        if let BodyItem::Pos(a) = &rule.body[i] {
            for v in a.vars() {
                bound[v as usize] = true;
            }
            atoms.push(AtomPlan {
                item_idx: i,
                pred: a.pred,
                mask,
                estimate: est,
            });
        }
        order.push(i);
    }

    RuleOrder { order, atoms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::parser::parse_program;
    use crate::value::Const;

    /// A star join whose selective atom sits last in rule text: the
    /// planner must pull it to the front.
    fn star_fixture() -> (Database, Program) {
        let mut db = Database::new();
        let (big1, big2, tiny) = (
            db.symbols().intern("big1"),
            db.symbols().intern("big2"),
            db.symbols().intern("tiny"),
        );
        let rows: Vec<Vec<Const>> = (0..500)
            .map(|i| vec![Const::Int(i % 50), Const::Int(i)])
            .collect();
        db.load_rows(big1, &rows);
        db.load_rows(big2, &rows);
        db.load_rows(tiny, &[vec![Const::Int(7)]]);
        let prog = parse_program(
            "q(Y, Z) :- big1(X, Y), big2(X, Z), tiny(X).\n@output(\"q\").\n",
            db.symbols(),
        )
        .unwrap();
        (db, prog)
    }

    #[test]
    fn selective_atom_moves_first() {
        let (db, prog) = star_fixture();
        let stats = DbStats::collect(db.relations());
        let plan = plan_program(&prog, db.symbols(), &stats).unwrap();
        // tiny (1 row) first, then the two indexed probes on X.
        assert_eq!(plan.rules[0].order, vec![2, 0, 1]);
        let masks: Vec<Mask> = plan.rules[0].atoms.iter().map(|a| a.mask).collect();
        assert_eq!(masks, vec![0, 0b001, 0b001]);
        // Index needs name exactly the bound-X probes.
        let needs = plan.index_needs();
        let big1 = db.symbols().get("big1").unwrap();
        let big2 = db.symbols().get("big2").unwrap();
        assert!(needs.contains(&(big1, 0b001)) && needs.contains(&(big2, 0b001)));
    }

    #[test]
    fn delta_variant_pins_delta_first() {
        let mut db = Database::new();
        let e = db.symbols().intern("edge");
        let rows: Vec<Vec<Const>> = (0..20)
            .map(|i| vec![Const::Int(i), Const::Int(i + 1)])
            .collect();
        db.load_rows(e, &rows);
        let prog = parse_program(
            "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n@output(\"tc\").\n",
            db.symbols(),
        )
        .unwrap();
        let stats = DbStats::collect(db.relations());
        let plan = plan_program(&prog, db.symbols(), &stats).unwrap();
        // Rule 1's only delta occurrence is tc at body item 1; the
        // variant must start there.
        let ro = &plan.delta[&(1, 1)];
        assert_eq!(ro.order[0], 1);
        assert_eq!(ro.atoms[0].mask, 0, "delta scan is batch-driven");
        assert_ne!(ro.atoms[1].mask, 0, "the other atom probes an index");
    }

    #[test]
    fn filters_run_at_earliest_evaluable_position() {
        let mut db = Database::new();
        let p = db.symbols().intern("p");
        let q = db.symbols().intern("q");
        let rows: Vec<Vec<Const>> = (0..100)
            .map(|i| vec![Const::Int(i), Const::Int(i)])
            .collect();
        db.load_rows(p, &rows);
        db.load_rows(q, &rows[..5]);
        // Filter mentions only X (bound by whichever atom goes first);
        // it must run before the second atom either way.
        let prog = parse_program(
            "out(X, Y) :- p(X, A), q(X, Y), A > 3.\n@output(\"out\").\n",
            db.symbols(),
        )
        .unwrap();
        let stats = DbStats::collect(db.relations());
        let plan = plan_program(&prog, db.symbols(), &stats).unwrap();
        let order = &plan.rules[0].order;
        // q (5 rows) first, then the filter is not yet ready (A unbound),
        // p probes on X, filter last-but-ready.
        assert_eq!(order[0], 1, "smaller q leads");
        let filter_pos = order.iter().position(|&i| i == 2).unwrap();
        let p_pos = order.iter().position(|&i| i == 0).unwrap();
        assert!(filter_pos > p_pos, "filter needs A from p");
    }

    #[test]
    fn render_mentions_orders_and_masks() {
        let (db, prog) = star_fixture();
        let stats = DbStats::collect(db.relations());
        let plan = plan_program(&prog, db.symbols(), &stats).unwrap();
        let text = plan.render(&prog, db.symbols());
        assert!(text.contains("order: [2, 0, 1]"), "{text}");
        assert!(text.contains("mask=0b1"), "{text}");
        assert!(text.contains("est="), "{text}");
    }
}
