//! `EXPLAIN ANALYZE`-style per-query profiling of the semi-naive
//! fixpoint.
//!
//! Armed via [`EvalOptions::profile`](crate::EvalOptions::profile), the
//! evaluator records per-rule timings, per-round delta sizes and
//! stratum wall times into a [`QueryProfile`] returned on
//! [`EvalStats::profile`](crate::EvalStats::profile). The unprofiled
//! path pays nothing: every recording site is behind the flag, and the
//! builder only allocates when profiling is armed.
//!
//! The profile renders two ways: [`QueryProfile::render`] is the
//! human-readable breakdown (the shape of the source paper's per-query
//! timing tables), [`QueryProfile::to_json`] the machine-readable
//! sidecar the HTTP layer ships when a request asks for
//! `profile=true`.

use std::time::Duration;

use crate::rule::Program;
use crate::symbols::SymbolTable;

/// One rule's aggregate cost across every pass that evaluated it.
#[derive(Debug, Clone)]
pub struct RuleProfile {
    /// The rule, rendered in Datalog text form.
    pub rule: String,
    /// Evaluation jobs run for this rule (naive pass + delta variants +
    /// partitions).
    pub jobs: u64,
    /// Head-candidate rows staged by this rule's bodies (before dedup).
    pub staged: u64,
    /// Rows this rule actually contributed (after dedup).
    pub derived: u64,
    /// Wall time summed across this rule's jobs. Jobs run concurrently,
    /// so rule times can sum to more than the query's wall time.
    pub elapsed: Duration,
}

/// One semi-naive round of a stratum. Round 0 is the naive first pass
/// (its "delta" is the whole database, reported as 0 input rows).
#[derive(Debug, Clone)]
pub struct RoundProfile {
    /// Round number within the stratum (0 = naive pass).
    pub round: usize,
    /// Rows in the input delta batches driving this round.
    pub delta_rows: usize,
    /// Head-candidate rows staged by this round (before dedup).
    pub staged: usize,
    /// Fresh rows this round added (after dedup) — the next round's
    /// delta.
    pub derived: usize,
    /// Wall time of the round (jobs + sequential merge).
    pub elapsed: Duration,
}

/// One stratum of the evaluation.
#[derive(Debug, Clone)]
pub struct StratumProfile {
    /// Stratum index in evaluation order.
    pub stratum: usize,
    /// The naive pass and every semi-naive round, in order.
    pub rounds: Vec<RoundProfile>,
    /// Wall time of the stratum, including plan compilation, index
    /// builds and aggregate rules.
    pub elapsed: Duration,
}

/// The full profile of one evaluation, attached to
/// [`EvalStats::profile`](crate::EvalStats::profile) when
/// [`EvalOptions::profile`](crate::EvalOptions::profile) is set.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// Per-rule cost, indexed like `program.rules`. Rules that never
    /// staged a row still appear (with zero counts) so the shape matches
    /// the program.
    pub rules: Vec<RuleProfile>,
    /// Per-stratum breakdown with per-round delta sizes.
    pub strata: Vec<StratumProfile>,
    /// Eager hash-join indexes built for this evaluation (the build
    /// sides the planner requested that did not already exist).
    pub index_builds: usize,
    /// Total evaluation wall time.
    pub elapsed: Duration,
}

impl QueryProfile {
    /// Human-readable `EXPLAIN ANALYZE`-style rendering: strata with
    /// per-round delta sizes, then rules by descending self time.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "evaluation: {:.3} ms, {} strata, {} index build(s)\n",
            self.elapsed.as_secs_f64() * 1e3,
            self.strata.len(),
            self.index_builds
        ));
        for s in &self.strata {
            out.push_str(&format!(
                "stratum {}: {:.3} ms, {} round(s)\n",
                s.stratum,
                s.elapsed.as_secs_f64() * 1e3,
                s.rounds.len().saturating_sub(1)
            ));
            for r in &s.rounds {
                let label = if r.round == 0 {
                    "naive".to_string()
                } else {
                    format!("round {}", r.round)
                };
                out.push_str(&format!(
                    "  {label}: delta={} staged={} derived={} ({:.3} ms)\n",
                    r.delta_rows,
                    r.staged,
                    r.derived,
                    r.elapsed.as_secs_f64() * 1e3
                ));
            }
        }
        let mut by_time: Vec<&RuleProfile> = self.rules.iter().filter(|r| r.jobs > 0).collect();
        by_time.sort_by_key(|r| std::cmp::Reverse(r.elapsed));
        for r in by_time {
            out.push_str(&format!(
                "rule [{:.3} ms, {} job(s), staged={} derived={}] {}\n",
                r.elapsed.as_secs_f64() * 1e3,
                r.jobs,
                r.staged,
                r.derived,
                r.rule
            ));
        }
        out
    }

    /// Compact JSON rendering (durations in microseconds) — the HTTP
    /// sidecar format. Hand-rolled like the rest of the workspace's
    /// JSON; rule texts are string-escaped.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"elapsed_us\":{}", self.elapsed.as_micros()));
        out.push_str(&format!(",\"index_builds\":{}", self.index_builds));
        out.push_str(",\"strata\":[");
        for (i, s) in self.strata.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stratum\":{},\"elapsed_us\":{},\"rounds\":[",
                s.stratum,
                s.elapsed.as_micros()
            ));
            for (j, r) in s.rounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"round\":{},\"delta_rows\":{},\"staged\":{},\"derived\":{},\"elapsed_us\":{}}}",
                    r.round,
                    r.delta_rows,
                    r.staged,
                    r.derived,
                    r.elapsed.as_micros()
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"rules\":[");
        let mut first = true;
        for r in self.rules.iter().filter(|r| r.jobs > 0) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"jobs\":{},\"staged\":{},\"derived\":{},\"elapsed_us\":{}}}",
                escape_json(&r.rule),
                r.jobs,
                r.staged,
                r.derived,
                r.elapsed.as_micros()
            ));
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Accumulates profile records during evaluation. Created only when
/// [`EvalOptions::profile`](crate::EvalOptions::profile) is armed.
#[derive(Debug)]
pub(crate) struct ProfileBuilder {
    profile: QueryProfile,
}

impl ProfileBuilder {
    pub(crate) fn new(program: &Program, symbols: &SymbolTable) -> Self {
        ProfileBuilder {
            profile: QueryProfile {
                rules: program
                    .rules
                    .iter()
                    .map(|r| RuleProfile {
                        rule: r.display(symbols),
                        jobs: 0,
                        staged: 0,
                        derived: 0,
                        elapsed: Duration::ZERO,
                    })
                    .collect(),
                ..QueryProfile::default()
            },
        }
    }

    /// One finished job of `rule_idx`: `staged` candidates in
    /// `nanos` wall time, of which `derived` survived the merge.
    pub(crate) fn record_job(
        &mut self,
        rule_idx: usize,
        staged: usize,
        derived: usize,
        nanos: u64,
    ) {
        if let Some(r) = self.profile.rules.get_mut(rule_idx) {
            r.jobs += 1;
            r.staged += staged as u64;
            r.derived += derived as u64;
            r.elapsed += Duration::from_nanos(nanos);
        }
    }

    pub(crate) fn record_round(&mut self, round: RoundProfile) {
        if let Some(s) = self.profile.strata.last_mut() {
            s.rounds.push(round);
        }
    }

    pub(crate) fn begin_stratum(&mut self, stratum: usize) {
        self.profile.strata.push(StratumProfile {
            stratum,
            rounds: Vec::new(),
            elapsed: Duration::ZERO,
        });
    }

    pub(crate) fn end_stratum(&mut self, elapsed: Duration) {
        if let Some(s) = self.profile.strata.last_mut() {
            s.elapsed = elapsed;
        }
    }

    pub(crate) fn record_index_builds(&mut self, built: usize) {
        self.profile.index_builds += built;
    }

    pub(crate) fn finish(mut self, elapsed: Duration) -> QueryProfile {
        self.profile.elapsed = elapsed;
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_rule_text() {
        let p = QueryProfile {
            rules: vec![RuleProfile {
                rule: "p(X) :- q(X, \"a\\b\")".to_string(),
                jobs: 1,
                staged: 2,
                derived: 1,
                elapsed: Duration::from_micros(5),
            }],
            strata: vec![StratumProfile {
                stratum: 0,
                rounds: vec![RoundProfile {
                    round: 0,
                    delta_rows: 0,
                    staged: 2,
                    derived: 1,
                    elapsed: Duration::from_micros(4),
                }],
                elapsed: Duration::from_micros(5),
            }],
            index_builds: 1,
            elapsed: Duration::from_micros(6),
        };
        let json = p.to_json();
        assert!(json.contains("\\\"a\\\\b\\\""));
        assert!(json.contains("\"delta_rows\":0"));
        assert!(json.contains("\"index_builds\":1"));
        let text = p.render();
        assert!(text.contains("stratum 0"));
        assert!(text.contains("naive: delta=0 staged=2 derived=1"));
    }
}
