//! Wardedness analysis for Datalog± programs (Arenas–Gottlob–Pieris).
//!
//! The paper's §3.2 gives the intuition implemented here:
//!
//! 1. A position `p[i]` is **affected** if the chase may introduce a
//!    labelled null there: either a head position holding an existential
//!    variable, or a head position holding a variable all of whose body
//!    occurrences are at affected positions (computed to fixpoint).
//! 2. A variable is **dangerous** in a rule if it occurs in the head and
//!    *all* of its body occurrences are at affected positions.
//! 3. A program is **warded** if every rule either has no dangerous
//!    variables, or all of them occur in a single body atom (the *ward*)
//!    whose variables shared with the rest of the body appear in at least
//!    one non-affected position.
//!
//! The analysis is advisory: the engine evaluates any stratified program;
//! this module lets tests assert that the SPARQL translation produces
//! warded programs, as the paper claims.

use crate::fxhash::FxHashSet;
use crate::rule::{Atom, AtomArg, BodyItem, Program, Rule, VarId};
use crate::symbols::{Sym, SymbolTable};

/// The result of a wardedness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WardednessReport {
    /// True if every rule is warded.
    pub warded: bool,
    /// Human-readable violations (empty iff `warded`).
    pub violations: Vec<String>,
    /// The affected positions `(predicate, position)` found.
    pub affected: Vec<(Sym, usize)>,
}

/// Runs the wardedness analysis.
pub fn check_wardedness(program: &Program, symbols: &SymbolTable) -> WardednessReport {
    let affected = affected_positions(program);
    let mut violations = Vec::new();

    for (idx, rule) in program.rules.iter().enumerate() {
        if let Some(v) = check_rule(rule, &affected, symbols) {
            violations.push(format!("rule {idx}: {v}"));
        }
    }

    WardednessReport {
        warded: violations.is_empty(),
        violations,
        affected: affected.iter().copied().collect(),
    }
}

/// Computes the affected positions of the program to fixpoint.
fn affected_positions(program: &Program) -> FxHashSet<(Sym, usize)> {
    let mut affected: FxHashSet<(Sym, usize)> = FxHashSet::default();

    // Base case: head positions of existential variables. Assignments from
    // Skolem-constructor expressions count as existentials too — they are
    // exactly how the engine realises ∃-variables.
    for rule in &program.rules {
        let existential = existential_like_vars(rule);
        for (i, arg) in rule.head.args.iter().enumerate() {
            if let AtomArg::Var(v) = arg {
                if existential.contains(v) {
                    affected.insert((rule.head.pred, i));
                }
            }
        }
    }

    // Propagation: a head position of a frontier variable is affected if
    // every body occurrence of that variable is at an affected position.
    loop {
        let mut changed = false;
        for rule in &program.rules {
            for (i, arg) in rule.head.args.iter().enumerate() {
                let v = match arg {
                    AtomArg::Var(v) => *v,
                    AtomArg::Const(_) => continue,
                };
                if affected.contains(&(rule.head.pred, i)) {
                    continue;
                }
                let occurrences = body_occurrences(rule, v);
                if !occurrences.is_empty()
                    && occurrences.iter().all(|pos| affected.contains(pos))
                    && affected.insert((rule.head.pred, i))
                {
                    changed = true;
                }
            }
        }
        if !changed {
            return affected;
        }
    }
}

/// Variables treated as existential for the analysis: true existential head
/// variables plus variables assigned from a Skolem constructor.
fn existential_like_vars(rule: &Rule) -> FxHashSet<VarId> {
    let mut out: FxHashSet<VarId> = rule.existential_vars().into_iter().collect();
    for item in &rule.body {
        if let BodyItem::Assign(v, e) = item {
            if matches!(e, crate::expr::Expr::Skolem(_, _)) {
                out.insert(*v);
            }
        }
    }
    out
}

/// The `(pred, position)` pairs where `v` occurs in positive body atoms.
fn body_occurrences(rule: &Rule, v: VarId) -> Vec<(Sym, usize)> {
    let mut out = Vec::new();
    for item in &rule.body {
        if let BodyItem::Pos(a) = item {
            for (i, arg) in a.args.iter().enumerate() {
                if matches!(arg, AtomArg::Var(w) if *w == v) {
                    out.push((a.pred, i));
                }
            }
        }
    }
    out
}

/// Checks one rule; returns a violation description if it is not warded.
fn check_rule(
    rule: &Rule,
    affected: &FxHashSet<(Sym, usize)>,
    symbols: &SymbolTable,
) -> Option<String> {
    // Dangerous variables: occur in the head, and all body occurrences are
    // at affected positions.
    let head_vars: FxHashSet<VarId> = rule.head.vars().into_iter().collect();
    let mut dangerous: Vec<VarId> = Vec::new();
    for &v in &head_vars {
        let occ = body_occurrences(rule, v);
        if !occ.is_empty() && occ.iter().all(|p| affected.contains(p)) {
            dangerous.push(v);
        }
    }
    if dangerous.is_empty() {
        return None;
    }

    // All dangerous variables must occur in a single body atom (the ward).
    let positive_atoms: Vec<&Atom> = rule
        .body
        .iter()
        .filter_map(|i| match i {
            BodyItem::Pos(a) => Some(a),
            _ => None,
        })
        .collect();

    'candidates: for ward in &positive_atoms {
        let ward_vars: FxHashSet<VarId> = ward.vars().into_iter().collect();
        if !dangerous.iter().all(|v| ward_vars.contains(v)) {
            continue;
        }
        // Variables shared between the ward and the rest of the body must
        // occur somewhere at a non-affected position.
        for other in &positive_atoms {
            if std::ptr::eq(*other, *ward) {
                continue;
            }
            for v in other.vars() {
                if !ward_vars.contains(&v) {
                    continue;
                }
                let occ = body_occurrences(rule, v);
                if occ.iter().all(|p| affected.contains(p)) {
                    continue 'candidates;
                }
            }
        }
        return None; // this atom is a valid ward
    }

    let names: Vec<String> = dangerous
        .iter()
        .map(|v| {
            rule.var_names
                .get(*v as usize)
                .cloned()
                .unwrap_or_else(|| format!("V{v}"))
        })
        .collect();
    Some(format!(
        "dangerous variables {{{}}} of head {} have no ward",
        names.join(", "),
        symbols.resolve(rule.head.pred)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleBuilder;
    use crate::symbols::SymbolTable;

    #[test]
    fn plain_datalog_is_warded() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        let mut b = RuleBuilder::new();
        let (hx, hy) = (b.v("X"), b.v("Y"));
        b.head(t.intern("tc"), vec![hx, hy]);
        let (x, y) = (b.v("X"), b.v("Y"));
        b.pos(t.intern("edge"), vec![x, y]);
        prog.rules.push(b.build());
        let report = check_wardedness(&prog, &t);
        assert!(report.warded, "{:?}", report.violations);
        assert!(report.affected.is_empty());
    }

    #[test]
    fn existential_head_marks_affected_positions() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        // ∃Z p(X, Z) :- q(X).
        let mut b = RuleBuilder::new();
        let (hx, hz) = (b.v("X"), b.v("Z"));
        b.head(t.intern("p"), vec![hx, hz]);
        let x = b.v("X");
        b.pos(t.intern("q"), vec![x]);
        prog.rules.push(b.build());
        let report = check_wardedness(&prog, &t);
        assert!(report.warded);
        assert!(report.affected.contains(&(t.intern("p"), 1)));
        assert!(!report.affected.contains(&(t.intern("p"), 0)));
    }

    #[test]
    fn null_propagation_through_single_atom_is_warded() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        // ∃Z p(X, Z) :- q(X).
        let mut b = RuleBuilder::new();
        let (hx, hz) = (b.v("X"), b.v("Z"));
        b.head(t.intern("p"), vec![hx, hz]);
        let x = b.v("X");
        b.pos(t.intern("q"), vec![x]);
        prog.rules.push(b.build());
        // r(Z) :- p(X, Z).   Z is dangerous, ward = p(X,Z). OK.
        let mut b = RuleBuilder::new();
        let hz = b.v("Z");
        b.head(t.intern("r"), vec![hz]);
        let (x, z) = (b.v("X"), b.v("Z"));
        b.pos(t.intern("p"), vec![x, z]);
        prog.rules.push(b.build());
        let report = check_wardedness(&prog, &t);
        assert!(report.warded, "{:?}", report.violations);
    }

    #[test]
    fn dangerous_join_on_affected_position_is_not_warded() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        // ∃Z p(X, Z) :- q(X).
        let mut b = RuleBuilder::new();
        let (hx, hz) = (b.v("X"), b.v("Z"));
        b.head(t.intern("p"), vec![hx, hz]);
        let x = b.v("X");
        b.pos(t.intern("q"), vec![x]);
        prog.rules.push(b.build());
        // bad(Z) :- p(X, Z), p(Y, Z).
        // Z is dangerous and shared between two atoms only at affected
        // positions — the classic non-warded shape.
        let mut b = RuleBuilder::new();
        let hz = b.v("Z");
        b.head(t.intern("bad"), vec![hz]);
        let (x, z1) = (b.v("X"), b.v("Z"));
        b.pos(t.intern("p"), vec![x, z1]);
        let (y, z2) = (b.v("Y"), b.v("Z"));
        b.pos(t.intern("p"), vec![y, z2]);
        prog.rules.push(b.build());
        let report = check_wardedness(&prog, &t);
        assert!(!report.warded);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("bad"));
    }

    #[test]
    fn skolem_assignment_counts_as_existential() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        // p(Id, X) :- q(X), Id = skolem(f, X).  Position p[0] is affected.
        let mut b = RuleBuilder::new();
        let (hid, hx) = (b.v("Id"), b.v("X"));
        b.head(t.intern("p"), vec![hid, hx]);
        let x = b.v("X");
        b.pos(t.intern("q"), vec![x]);
        let id = b.var("Id");
        let xv = b.var("X");
        b.assign(
            id,
            crate::expr::Expr::Skolem(t.intern("f"), vec![crate::expr::Expr::Var(xv)]),
        );
        prog.rules.push(b.build());
        let report = check_wardedness(&prog, &t);
        assert!(report.warded);
        assert!(report.affected.contains(&(t.intern("p"), 0)));
    }

    #[test]
    fn affected_propagates_transitively() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        // ∃Z p(Z) :- q(X).
        let mut b = RuleBuilder::new();
        let hz = b.v("Z");
        b.head(t.intern("p"), vec![hz]);
        let x = b.v("X");
        b.pos(t.intern("q"), vec![x]);
        prog.rules.push(b.build());
        // r(Z) :- p(Z).   r[0] becomes affected transitively.
        let mut b = RuleBuilder::new();
        let hz = b.v("Z");
        b.head(t.intern("r"), vec![hz]);
        let z = b.v("Z");
        b.pos(t.intern("p"), vec![z]);
        prog.rules.push(b.build());
        let report = check_wardedness(&prog, &t);
        assert!(report.affected.contains(&(t.intern("r"), 0)));
    }
}
