//! Runtime values (constants) of the Datalog± engine, and the **term
//! dictionary** that encodes them into fixed-width [`TermId`]s.
//!
//! The value model is a scaled-down Vadalog: first-class RDF terms (IRIs,
//! blank nodes, plain/lang/typed literals), machine types for computed
//! values (integers, floats, booleans), the distinguished `null` constant
//! used by the SPARQL translation for unbound variables, and **Skolem
//! terms** — uninterpreted function terms used both as labelled nulls for
//! existential rules and as the tuple IDs of the paper's
//! duplicate-preservation model (§5.1).
//!
//! [`Const`] is the *boundary* representation: it enters the engine once
//! at load time (T_D) and leaves once at solution extraction (T_S).
//! Internally — fact storage, join keys, dedup, Skolemisation — the
//! engine runs entirely on [`TermId`]s: `u64`s that either encode the
//! constant inline (nulls, booleans, small integers, interned symbols)
//! or index into the shared [`TermDict`]. Encoding is canonical and
//! injective, so `TermId` equality coincides with structural [`Const`]
//! equality and tuples become flat, `Copy`-able fixed-width records.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::AtomicUsize;
use std::sync::{Arc, RwLock};

use crate::fxhash::{FxHashMap, FxHasher};
use crate::symbols::{Sym, SymbolTable};

/// A total-ordered `f64` wrapper (NaN compares greatest, -0.0 == 0.0 is
/// *not* collapsed: we compare by bits when `partial_cmp` fails).
#[derive(Debug, Clone, Copy)]
pub struct OrdF64(pub f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for OrdF64 {}

impl std::hash::Hash for OrdF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or_else(|| self.0.to_bits().cmp(&other.0.to_bits()))
    }
}

/// A Skolem term: an uninterpreted functor applied to constants.
///
/// In the paper's notation these are the tuple IDs
/// `ID = ["f1a", X, N, V2_X, V2_L, ID2, ID3]` (Figure 2). The functor is
/// the `"f1a"` label; the args are the listed values, which may themselves
/// be Skolem terms (that recursive structure is what makes the ID count
/// equal the derivation-tree count).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkolemTerm {
    /// The uninterpreted function symbol (`"f1a"` in the paper).
    pub functor: Sym,
    /// The argument values, possibly Skolem terms themselves.
    pub args: Vec<Const>,
}

impl SkolemTerm {
    /// Maximum nesting depth of Skolem terms inside this term (a bare
    /// functor has depth 1). Used by the chase termination bound.
    pub fn depth(&self) -> usize {
        1 + self.args.iter().map(Const::skolem_depth).max().unwrap_or(0)
    }
}

/// A constant of the Datalog± engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// An IRI (interned).
    Iri(Sym),
    /// A blank node label (interned).
    Bnode(Sym),
    /// A plain string / simple literal (interned).
    Str(Sym),
    /// A language-tagged literal: (lexical, lang).
    LangStr(Sym, Sym),
    /// A datatyped literal: (lexical, datatype IRI).
    Typed(Sym, Sym),
    /// A machine integer (computed values, counts).
    Int(i64),
    /// A machine float (computed values, averages).
    Float(OrdF64),
    /// A machine boolean (e.g. the `HasResult` of ASK translation).
    Bool(bool),
    /// The distinguished `"null"` constant of the SPARQL translation
    /// (Def. A.2) — represents an unbound variable in a solution mapping.
    Null,
    /// A Skolem term / labelled null / tuple ID.
    Skolem(Arc<SkolemTerm>),
}

impl Const {
    /// Creates a Skolem constant.
    pub fn skolem(functor: Sym, args: Vec<Const>) -> Self {
        Const::Skolem(Arc::new(SkolemTerm { functor, args }))
    }

    /// Skolem nesting depth (0 for non-Skolem constants).
    pub fn skolem_depth(&self) -> usize {
        match self {
            Const::Skolem(t) => t.depth(),
            _ => 0,
        }
    }

    /// True if this constant is (or contains) a labelled null, i.e. a
    /// Skolem term. Used by the wardedness analysis tests.
    pub fn is_skolem(&self) -> bool {
        matches!(self, Const::Skolem(_))
    }

    /// True for the `null` constant.
    pub fn is_null(&self) -> bool {
        matches!(self, Const::Null)
    }

    /// The numeric value of the constant, if any: machine numbers and
    /// numeric typed literals qualify.
    pub fn as_f64(&self, symbols: &SymbolTable) -> Option<f64> {
        match self {
            Const::Int(i) => Some(*i as f64),
            Const::Float(f) => Some(f.0),
            Const::Typed(lex, dt) => {
                let dt = symbols.resolve(*dt);
                if sparqlog_xsd_is_numeric(&dt) {
                    symbols.resolve(*lex).trim().parse().ok()
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The integer value, if the constant is integral.
    pub fn as_i64(&self, symbols: &SymbolTable) -> Option<i64> {
        match self {
            Const::Int(i) => Some(*i),
            Const::Typed(lex, dt) => {
                let dt = symbols.resolve(*dt);
                if sparqlog_xsd_is_integer(&dt) {
                    symbols.resolve(*lex).trim().parse().ok()
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Renders the constant for human consumption (test assertions,
    /// debugging, benchmark output).
    pub fn display(&self, symbols: &SymbolTable) -> String {
        match self {
            Const::Iri(s) => format!("<{}>", symbols.resolve(*s)),
            Const::Bnode(s) => format!("_:{}", symbols.resolve(*s)),
            Const::Str(s) => format!("{:?}", symbols.resolve(*s)),
            Const::LangStr(lex, lang) => {
                format!("{:?}@{}", symbols.resolve(*lex), symbols.resolve(*lang))
            }
            Const::Typed(lex, dt) => {
                format!("{:?}^^<{}>", symbols.resolve(*lex), symbols.resolve(*dt))
            }
            Const::Int(i) => i.to_string(),
            Const::Float(f) => f.0.to_string(),
            Const::Bool(b) => b.to_string(),
            Const::Null => "null".to_string(),
            Const::Skolem(t) => {
                let args: Vec<String> = t.args.iter().map(|a| a.display(symbols)).collect();
                format!("[{}|{}]", symbols.resolve(t.functor), args.join(","))
            }
        }
    }
}

// Local numeric-datatype checks. Duplicated from `sparqlog-rdf` on purpose:
// the datalog crate is a freestanding substrate with no RDF dependency.
fn sparqlog_xsd_is_integer(dt: &str) -> bool {
    matches!(
        dt,
        "http://www.w3.org/2001/XMLSchema#integer"
            | "http://www.w3.org/2001/XMLSchema#long"
            | "http://www.w3.org/2001/XMLSchema#int"
            | "http://www.w3.org/2001/XMLSchema#short"
            | "http://www.w3.org/2001/XMLSchema#byte"
            | "http://www.w3.org/2001/XMLSchema#nonNegativeInteger"
    )
}

fn sparqlog_xsd_is_numeric(dt: &str) -> bool {
    sparqlog_xsd_is_integer(dt)
        || matches!(
            dt,
            "http://www.w3.org/2001/XMLSchema#decimal"
                | "http://www.w3.org/2001/XMLSchema#double"
                | "http://www.w3.org/2001/XMLSchema#float"
        )
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Symbol-free rendering for contexts without a table at hand.
        match self {
            Const::Int(i) => write!(f, "{i}"),
            Const::Float(x) => write!(f, "{}", x.0),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Null => write!(f, "null"),
            other => write!(f, "{other:?}"),
        }
    }
}

// ------------------------------------------------------- term dictionary

/// A dictionary-encoded term: a fixed-width stand-in for a [`Const`].
///
/// The top 4 bits are a variant tag; the low 60 bits are the payload —
/// either the value itself (null, boolean, small integer, interned
/// symbol(s), float with a short bit pattern) or an index into the
/// [`TermDict`]'s spill/Skolem tables. Equality and hashing are single
/// `u64` operations, which is what makes the join/dedup hot path cheap.
///
/// `Ord` is derived for use in ordered containers but has **no semantic
/// meaning**; value ordering (`ORDER BY`, comparisons) always goes
/// through decoded [`Const`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u64);

const TAG_SHIFT: u32 = 60;
const PAYLOAD_MASK: u64 = (1 << TAG_SHIFT) - 1;

const TAG_NULL: u64 = 0;
const TAG_BOOL: u64 = 1;
const TAG_INT: u64 = 2;
const TAG_IRI: u64 = 3;
const TAG_BNODE: u64 = 4;
const TAG_STR: u64 = 5;
const TAG_LANG: u64 = 6;
const TAG_TYPED: u64 = 7;
const TAG_FLOAT: u64 = 8;
const TAG_SKOLEM: u64 = 14;
const TAG_SPILL: u64 = 15;

/// Inline packing of two symbols: the first gets 32 bits, the second the
/// remaining 28. Datatype/language symbols are interned early and small,
/// so the 28-bit limit virtually never spills in practice.
const PAIR_SHIFT: u32 = 28;
const PAIR_MAX: u32 = (1 << PAIR_SHIFT) - 1;

/// Small integers encode inline as 60-bit two's complement.
const INT_MIN_INLINE: i64 = -(1 << 59);
const INT_MAX_INLINE: i64 = (1 << 59) - 1;

impl TermId {
    /// The encoding of [`Const::Null`].
    pub const NULL: TermId = TermId(0);

    #[inline]
    fn new(tag: u64, payload: u64) -> TermId {
        debug_assert!(payload <= PAYLOAD_MASK);
        TermId((tag << TAG_SHIFT) | payload)
    }

    #[inline]
    fn tag(self) -> u64 {
        self.0 >> TAG_SHIFT
    }

    #[inline]
    fn payload(self) -> u64 {
        self.0 & PAYLOAD_MASK
    }

    /// The raw bit pattern (stable only within one dictionary).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True for the encoding of [`Const::Null`].
    #[inline]
    pub fn is_null(self) -> bool {
        self == TermId::NULL
    }

    /// True for Skolem-term encodings (labelled nulls / tuple IDs).
    #[inline]
    pub fn is_skolem(self) -> bool {
        self.tag() == TAG_SKOLEM
    }
}

/// An interned Skolem node: the functor, the already-encoded arguments,
/// and the precomputed nesting depth (so the chase-termination check is
/// O(1) instead of a recursive walk).
#[derive(Debug)]
struct SkolemNode {
    functor: Sym,
    args: Box<[TermId]>,
    depth: u32,
}

/// Sharding of the spill/Skolem tables: the shard index lives in the low
/// bits of the payload, the per-shard table index in the high bits. A term
/// routes to its shard by content hash, so encoding stays canonical.
const SHARD_BITS: u32 = 4;
const NSHARDS: usize = 1 << SHARD_BITS;
const SHARD_MASK: u64 = NSHARDS as u64 - 1;

#[inline]
fn shard_payload(shard: usize, local: u32) -> u64 {
    ((local as u64) << SHARD_BITS) | shard as u64
}

#[derive(Debug, Default)]
struct DictShard {
    /// Constants that don't fit inline, indexed by the local spill id.
    spill: Vec<Const>,
    spill_ids: FxHashMap<Const, u32>,
    /// Interned Skolem terms, indexed by the local node id.
    skolems: Vec<SkolemNode>,
    /// functor → args → node id (nested so hits need no allocation).
    skolem_ids: FxHashMap<Sym, FxHashMap<Box<[TermId]>, u32>>,
}

/// The global term dictionary: [`Const`] ⇄ [`TermId`].
///
/// Shared (`Arc`) between the database, the evaluator and the translation
/// boundary, like the [`SymbolTable`]. Most terms encode inline and never
/// touch a lock; only the spill and Skolem tables are guarded — and those
/// are **sharded** 16 ways by content hash, so concurrent rule workers
/// interning Skolem tuple IDs contend only when they hash to the same
/// shard. No lock is ever held while another shard is consulted (arg
/// depths and nested decodes release before crossing shards), so the
/// sharding cannot deadlock.
///
/// The invariant the engine relies on: encoding is **canonical** — equal
/// constants always produce equal `TermId`s and distinct constants
/// distinct ones — so the evaluator may compare, hash and deduplicate
/// encoded tuples without ever decoding.
#[derive(Debug, Default)]
pub struct TermDict {
    shards: [RwLock<DictShard>; NSHARDS],
    /// Terms interned into the spill/Skolem tables since creation, for
    /// the execution governor's dictionary-growth budget
    /// ([`crate::Budget::with_max_dict_growth`]). Bumped on the insert
    /// paths only (already under a shard write lock), read with a single
    /// relaxed load.
    interned: AtomicUsize,
}

impl TermDict {
    /// Creates an empty dictionary.
    pub fn new() -> Arc<Self> {
        Arc::new(TermDict::default())
    }

    #[inline]
    fn spill_shard(c: &Const) -> usize {
        let mut h = FxHasher::default();
        c.hash(&mut h);
        (h.finish() & SHARD_MASK) as usize
    }

    #[inline]
    fn skolem_shard(functor: Sym, args: &[TermId]) -> usize {
        let mut h = FxHasher::default();
        h.write_u32(functor.0);
        for a in args {
            h.write_u64(a.raw());
        }
        (h.finish() & SHARD_MASK) as usize
    }

    /// Encodes a constant (interning into the spill/Skolem tables when it
    /// doesn't fit inline).
    pub fn encode(&self, c: &Const) -> TermId {
        match c {
            Const::Null => TermId::NULL,
            Const::Bool(b) => TermId::new(TAG_BOOL, *b as u64),
            Const::Int(i) if (INT_MIN_INLINE..=INT_MAX_INLINE).contains(i) => {
                TermId::new(TAG_INT, (*i as u64) & PAYLOAD_MASK)
            }
            Const::Iri(s) => TermId::new(TAG_IRI, s.0 as u64),
            Const::Bnode(s) => TermId::new(TAG_BNODE, s.0 as u64),
            Const::Str(s) => TermId::new(TAG_STR, s.0 as u64),
            Const::LangStr(lex, lang) if lang.0 <= PAIR_MAX => {
                TermId::new(TAG_LANG, ((lex.0 as u64) << PAIR_SHIFT) | lang.0 as u64)
            }
            Const::Typed(lex, dt) if dt.0 <= PAIR_MAX => {
                TermId::new(TAG_TYPED, ((lex.0 as u64) << PAIR_SHIFT) | dt.0 as u64)
            }
            Const::Float(f) if f.0.to_bits() & 0xF == 0 => {
                TermId::new(TAG_FLOAT, f.0.to_bits() >> 4)
            }
            Const::Skolem(t) => {
                let args: Vec<TermId> = t.args.iter().map(|a| self.encode(a)).collect();
                self.skolem(t.functor, &args)
            }
            other => self.spill(other),
        }
    }

    /// Interns (or looks up) the Skolem term `functor(args)` directly in
    /// id space — the fast path for tuple-ID generation, which never
    /// materialises a [`SkolemTerm`].
    pub fn skolem(&self, functor: Sym, args: &[TermId]) -> TermId {
        let shard = Self::skolem_shard(functor, args);
        if let Some(per_functor) = self.shards[shard].read().unwrap().skolem_ids.get(&functor) {
            if let Some(&id) = per_functor.get(args) {
                return TermId::new(TAG_SKOLEM, shard_payload(shard, id));
            }
        }
        // Nested Skolem args may live in *other* shards: compute the depth
        // before taking this shard's write lock so no two locks are ever
        // held at once (lock-order freedom ⇒ no deadlock).
        let depth = 1 + args
            .iter()
            .map(|&a| self.skolem_depth(a) as u32)
            .max()
            .unwrap_or(0);
        let mut w = self.shards[shard].write().unwrap();
        if let Some(&id) = w.skolem_ids.get(&functor).and_then(|m| m.get(args)) {
            return TermId::new(TAG_SKOLEM, shard_payload(shard, id));
        }
        let id = w.skolems.len() as u32;
        let boxed: Box<[TermId]> = args.into();
        w.skolems.push(SkolemNode {
            functor,
            args: boxed.clone(),
            depth,
        });
        w.skolem_ids.entry(functor).or_default().insert(boxed, id);
        self.interned
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        TermId::new(TAG_SKOLEM, shard_payload(shard, id))
    }

    /// Number of terms interned into the spill/Skolem tables so far — the
    /// dictionary's growth measure. Inline-encoded terms (small ints,
    /// IRIs, plain strings, ...) never count: they allocate nothing here.
    pub fn interned_terms(&self) -> usize {
        self.interned.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Skolem nesting depth of an encoded term (0 for non-Skolem terms).
    /// O(1): depths are computed once at interning time.
    pub fn skolem_depth(&self, id: TermId) -> usize {
        if !id.is_skolem() {
            return 0;
        }
        let payload = id.payload();
        let shard = (payload & SHARD_MASK) as usize;
        let local = (payload >> SHARD_BITS) as usize;
        self.shards[shard].read().unwrap().skolems[local].depth as usize
    }

    /// Decodes an id back into a constant. Panics on an id from another
    /// dictionary (like [`SymbolTable::resolve`] on a foreign symbol).
    pub fn decode(&self, id: TermId) -> Const {
        let payload = id.payload();
        let shard = (payload & SHARD_MASK) as usize;
        let local = (payload >> SHARD_BITS) as usize;
        match id.tag() {
            TAG_SPILL => self.shards[shard].read().unwrap().spill[local].clone(),
            TAG_SKOLEM => {
                // Clone the node out and release the lock before decoding
                // the args: they may live in other shards, and holding a
                // read lock across that recursion could deadlock against a
                // writer queued on this shard.
                let (functor, args) = {
                    let inner = self.shards[shard].read().unwrap();
                    let node = &inner.skolems[local];
                    (node.functor, node.args.clone())
                };
                let args: Vec<Const> = args.iter().map(|&a| self.decode(a)).collect();
                Const::skolem(functor, args)
            }
            _ => TermDict::decode_inline(id),
        }
    }

    fn decode_inline(id: TermId) -> Const {
        debug_assert!(id.tag() < TAG_SKOLEM);
        match id.tag() {
            TAG_NULL => Const::Null,
            TAG_BOOL => Const::Bool(id.payload() != 0),
            TAG_INT => Const::Int(((id.payload() << 4) as i64) >> 4),
            TAG_IRI => Const::Iri(Sym(id.payload() as u32)),
            TAG_BNODE => Const::Bnode(Sym(id.payload() as u32)),
            TAG_STR => Const::Str(Sym(id.payload() as u32)),
            TAG_LANG => Const::LangStr(
                Sym((id.payload() >> PAIR_SHIFT) as u32),
                Sym((id.payload() & PAIR_MAX as u64) as u32),
            ),
            TAG_TYPED => Const::Typed(
                Sym((id.payload() >> PAIR_SHIFT) as u32),
                Sym((id.payload() & PAIR_MAX as u64) as u32),
            ),
            TAG_FLOAT => Const::Float(OrdF64(f64::from_bits(id.payload() << 4))),
            _ => unreachable!("decode_inline on table-backed tag"),
        }
    }

    fn spill(&self, c: &Const) -> TermId {
        let shard = Self::spill_shard(c);
        if let Some(&id) = self.shards[shard].read().unwrap().spill_ids.get(c) {
            return TermId::new(TAG_SPILL, shard_payload(shard, id));
        }
        let mut w = self.shards[shard].write().unwrap();
        if let Some(&id) = w.spill_ids.get(c) {
            return TermId::new(TAG_SPILL, shard_payload(shard, id));
        }
        let id = w.spill.len() as u32;
        w.spill.push(c.clone());
        w.spill_ids.insert(c.clone(), id);
        self.interned
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        TermId::new(TAG_SPILL, shard_payload(shard, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_total_order() {
        assert!(OrdF64(1.0) < OrdF64(2.0));
        assert_eq!(OrdF64(f64::NAN), OrdF64(f64::NAN));
        assert!(OrdF64(f64::NAN) > OrdF64(f64::INFINITY));
    }

    #[test]
    fn skolem_depth() {
        let t = SymbolTable::new();
        let f = t.intern("f");
        let flat = Const::skolem(f, vec![Const::Int(1)]);
        assert_eq!(flat.skolem_depth(), 1);
        let nested = Const::skolem(f, vec![flat.clone(), Const::Int(2)]);
        assert_eq!(nested.skolem_depth(), 2);
        let deeper = Const::skolem(f, vec![nested]);
        assert_eq!(deeper.skolem_depth(), 3);
        assert_eq!(Const::Int(5).skolem_depth(), 0);
    }

    #[test]
    fn skolem_identity_is_structural() {
        let t = SymbolTable::new();
        let f = t.intern("f");
        let a = Const::skolem(f, vec![Const::Int(1), Const::Null]);
        let b = Const::skolem(f, vec![Const::Int(1), Const::Null]);
        let c = Const::skolem(f, vec![Const::Int(2), Const::Null]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn numeric_views() {
        let t = SymbolTable::new();
        assert_eq!(Const::Int(3).as_f64(&t), Some(3.0));
        assert_eq!(Const::Float(OrdF64(2.5)).as_f64(&t), Some(2.5));
        let lex = t.intern("42");
        let dt = t.intern("http://www.w3.org/2001/XMLSchema#integer");
        let typed = Const::Typed(lex, dt);
        assert_eq!(typed.as_i64(&t), Some(42));
        assert_eq!(typed.as_f64(&t), Some(42.0));
        let s = Const::Str(t.intern("42"));
        assert_eq!(s.as_f64(&t), None, "plain strings are not numeric");
    }

    #[test]
    fn display_forms() {
        let t = SymbolTable::new();
        let iri = Const::Iri(t.intern("http://a"));
        assert_eq!(iri.display(&t), "<http://a>");
        let id = Const::skolem(t.intern("f1"), vec![Const::Int(7)]);
        assert_eq!(id.display(&t), "[f1|7]");
        assert_eq!(Const::Null.display(&t), "null");
    }

    fn sample_consts(t: &SymbolTable) -> Vec<Const> {
        let f = t.intern("f");
        let g = t.intern("g");
        let nested = Const::skolem(
            g,
            vec![
                Const::skolem(f, vec![Const::Int(1), Const::Null]),
                Const::Float(OrdF64(2.5)),
            ],
        );
        vec![
            Const::Null,
            Const::Bool(true),
            Const::Bool(false),
            Const::Int(0),
            Const::Int(-1),
            Const::Int(i64::MAX),
            Const::Int(i64::MIN),
            Const::Int(INT_MAX_INLINE),
            Const::Int(INT_MAX_INLINE + 1),
            Const::Int(INT_MIN_INLINE),
            Const::Int(INT_MIN_INLINE - 1),
            Const::Float(OrdF64(0.0)),
            Const::Float(OrdF64(-0.0)),
            Const::Float(OrdF64(2.5)),
            Const::Float(OrdF64(f64::NAN)),
            Const::Float(OrdF64(1.0 / 3.0)),
            Const::Iri(t.intern("http://a")),
            Const::Bnode(t.intern("b0")),
            Const::Str(t.intern("hello")),
            Const::LangStr(t.intern("chat"), t.intern("fr")),
            Const::Typed(
                t.intern("5"),
                t.intern("http://www.w3.org/2001/XMLSchema#integer"),
            ),
            Const::skolem(f, vec![]),
            Const::skolem(f, vec![Const::Int(1), Const::Null]),
            nested,
        ]
    }

    #[test]
    fn dict_roundtrips_every_variant() {
        let t = SymbolTable::new();
        let dict = TermDict::new();
        for c in sample_consts(&t) {
            let id = dict.encode(&c);
            assert_eq!(dict.decode(id), c, "{c:?} (id {:#x})", id.raw());
        }
    }

    #[test]
    fn dict_encoding_is_canonical() {
        let t = SymbolTable::new();
        let dict = TermDict::new();
        let consts = sample_consts(&t);
        let ids: Vec<TermId> = consts.iter().map(|c| dict.encode(c)).collect();
        for (i, a) in consts.iter().enumerate() {
            // Deterministic: re-encoding yields the same id.
            assert_eq!(dict.encode(a), ids[i], "{a:?}");
            for (j, b) in consts.iter().enumerate() {
                assert_eq!(ids[i] == ids[j], a == b, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn dict_skolem_interning_is_by_identity() {
        let t = SymbolTable::new();
        let dict = TermDict::new();
        let f = t.intern("f");
        let one = dict.encode(&Const::Int(1));
        let a = dict.skolem(f, &[one, TermId::NULL]);
        let b = dict.skolem(f, &[one, TermId::NULL]);
        let c = dict.skolem(f, &[one]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.is_skolem());
        // Matches the structural encoding route.
        let structural = dict.encode(&Const::skolem(f, vec![Const::Int(1), Const::Null]));
        assert_eq!(a, structural);
    }

    #[test]
    fn dict_skolem_depth_is_precomputed() {
        let t = SymbolTable::new();
        let dict = TermDict::new();
        let f = t.intern("f");
        let flat = dict.skolem(f, &[dict.encode(&Const::Int(1))]);
        assert_eq!(dict.skolem_depth(flat), 1);
        let nested = dict.skolem(f, &[flat, dict.encode(&Const::Int(2))]);
        assert_eq!(dict.skolem_depth(nested), 2);
        let deeper = dict.skolem(f, &[nested]);
        assert_eq!(dict.skolem_depth(deeper), 3);
        assert_eq!(dict.skolem_depth(dict.encode(&Const::Int(5))), 0);
        assert_eq!(dict.skolem_depth(TermId::NULL), 0);
    }

    #[test]
    fn concurrent_interning_is_canonical() {
        // Hammer the sharded spill/Skolem tables from many threads: every
        // thread must agree on the id of every term (canonical encoding),
        // including nested Skolems whose args land in different shards.
        let t = SymbolTable::new();
        let dict = TermDict::new();
        let consts: Vec<Const> = sample_consts(&t);
        let per_thread: Vec<Vec<TermId>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|k| {
                    let dict = dict.clone();
                    let t = t.clone();
                    let consts = &consts;
                    s.spawn(move || {
                        let mut ids = Vec::new();
                        for round in 0..50 {
                            for (i, c) in consts.iter().enumerate() {
                                let id = dict.encode(c);
                                if (i + round + k) % 3 == 0 {
                                    // Interleave some fresh nested Skolems.
                                    let f = t.intern("conc");
                                    dict.skolem(f, &[id, TermId::NULL]);
                                }
                                if round == 0 {
                                    ids.push(id);
                                }
                            }
                        }
                        ids
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for ids in &per_thread {
            assert_eq!(ids, &per_thread[0], "all threads agree on every id");
        }
        for (c, &id) in consts.iter().zip(&per_thread[0]) {
            assert_eq!(dict.decode(id), *c);
        }
    }

    #[test]
    fn null_id_is_fixed() {
        let dict = TermDict::new();
        assert_eq!(dict.encode(&Const::Null), TermId::NULL);
        assert!(TermId::NULL.is_null());
        assert!(!dict.encode(&Const::Bool(false)).is_null());
    }
}
