//! Runtime values (constants) of the Datalog± engine.
//!
//! The value model is a scaled-down Vadalog: first-class RDF terms (IRIs,
//! blank nodes, plain/lang/typed literals), machine types for computed
//! values (integers, floats, booleans), the distinguished `null` constant
//! used by the SPARQL translation for unbound variables, and **Skolem
//! terms** — uninterpreted function terms used both as labelled nulls for
//! existential rules and as the tuple IDs of the paper's
//! duplicate-preservation model (§5.1).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::symbols::{Sym, SymbolTable};

/// A total-ordered `f64` wrapper (NaN compares greatest, -0.0 == 0.0 is
/// *not* collapsed: we compare by bits when `partial_cmp` fails).
#[derive(Debug, Clone, Copy)]
pub struct OrdF64(pub f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for OrdF64 {}

impl std::hash::Hash for OrdF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or_else(|| self.0.to_bits().cmp(&other.0.to_bits()))
    }
}

/// A Skolem term: an uninterpreted functor applied to constants.
///
/// In the paper's notation these are the tuple IDs
/// `ID = ["f1a", X, N, V2_X, V2_L, ID2, ID3]` (Figure 2). The functor is
/// the `"f1a"` label; the args are the listed values, which may themselves
/// be Skolem terms (that recursive structure is what makes the ID count
/// equal the derivation-tree count).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkolemTerm {
    pub functor: Sym,
    pub args: Vec<Const>,
}

impl SkolemTerm {
    /// Maximum nesting depth of Skolem terms inside this term (a bare
    /// functor has depth 1). Used by the chase termination bound.
    pub fn depth(&self) -> usize {
        1 + self
            .args
            .iter()
            .map(Const::skolem_depth)
            .max()
            .unwrap_or(0)
    }
}

/// A constant of the Datalog± engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// An IRI (interned).
    Iri(Sym),
    /// A blank node label (interned).
    Bnode(Sym),
    /// A plain string / simple literal (interned).
    Str(Sym),
    /// A language-tagged literal: (lexical, lang).
    LangStr(Sym, Sym),
    /// A datatyped literal: (lexical, datatype IRI).
    Typed(Sym, Sym),
    /// A machine integer (computed values, counts).
    Int(i64),
    /// A machine float (computed values, averages).
    Float(OrdF64),
    /// A machine boolean (e.g. the `HasResult` of ASK translation).
    Bool(bool),
    /// The distinguished `"null"` constant of the SPARQL translation
    /// (Def. A.2) — represents an unbound variable in a solution mapping.
    Null,
    /// A Skolem term / labelled null / tuple ID.
    Skolem(Arc<SkolemTerm>),
}

impl Const {
    /// Creates a Skolem constant.
    pub fn skolem(functor: Sym, args: Vec<Const>) -> Self {
        Const::Skolem(Arc::new(SkolemTerm { functor, args }))
    }

    /// Skolem nesting depth (0 for non-Skolem constants).
    pub fn skolem_depth(&self) -> usize {
        match self {
            Const::Skolem(t) => t.depth(),
            _ => 0,
        }
    }

    /// True if this constant is (or contains) a labelled null, i.e. a
    /// Skolem term. Used by the wardedness analysis tests.
    pub fn is_skolem(&self) -> bool {
        matches!(self, Const::Skolem(_))
    }

    /// True for the `null` constant.
    pub fn is_null(&self) -> bool {
        matches!(self, Const::Null)
    }

    /// The numeric value of the constant, if any: machine numbers and
    /// numeric typed literals qualify.
    pub fn as_f64(&self, symbols: &SymbolTable) -> Option<f64> {
        match self {
            Const::Int(i) => Some(*i as f64),
            Const::Float(f) => Some(f.0),
            Const::Typed(lex, dt) => {
                let dt = symbols.resolve(*dt);
                if sparqlog_xsd_is_numeric(&dt) {
                    symbols.resolve(*lex).trim().parse().ok()
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The integer value, if the constant is integral.
    pub fn as_i64(&self, symbols: &SymbolTable) -> Option<i64> {
        match self {
            Const::Int(i) => Some(*i),
            Const::Typed(lex, dt) => {
                let dt = symbols.resolve(*dt);
                if sparqlog_xsd_is_integer(&dt) {
                    symbols.resolve(*lex).trim().parse().ok()
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Renders the constant for human consumption (test assertions,
    /// debugging, benchmark output).
    pub fn display(&self, symbols: &SymbolTable) -> String {
        match self {
            Const::Iri(s) => format!("<{}>", symbols.resolve(*s)),
            Const::Bnode(s) => format!("_:{}", symbols.resolve(*s)),
            Const::Str(s) => format!("{:?}", symbols.resolve(*s)),
            Const::LangStr(lex, lang) => {
                format!("{:?}@{}", symbols.resolve(*lex), symbols.resolve(*lang))
            }
            Const::Typed(lex, dt) => {
                format!("{:?}^^<{}>", symbols.resolve(*lex), symbols.resolve(*dt))
            }
            Const::Int(i) => i.to_string(),
            Const::Float(f) => f.0.to_string(),
            Const::Bool(b) => b.to_string(),
            Const::Null => "null".to_string(),
            Const::Skolem(t) => {
                let args: Vec<String> =
                    t.args.iter().map(|a| a.display(symbols)).collect();
                format!("[{}|{}]", symbols.resolve(t.functor), args.join(","))
            }
        }
    }
}

// Local numeric-datatype checks. Duplicated from `sparqlog-rdf` on purpose:
// the datalog crate is a freestanding substrate with no RDF dependency.
fn sparqlog_xsd_is_integer(dt: &str) -> bool {
    matches!(
        dt,
        "http://www.w3.org/2001/XMLSchema#integer"
            | "http://www.w3.org/2001/XMLSchema#long"
            | "http://www.w3.org/2001/XMLSchema#int"
            | "http://www.w3.org/2001/XMLSchema#short"
            | "http://www.w3.org/2001/XMLSchema#byte"
            | "http://www.w3.org/2001/XMLSchema#nonNegativeInteger"
    )
}

fn sparqlog_xsd_is_numeric(dt: &str) -> bool {
    sparqlog_xsd_is_integer(dt)
        || matches!(
            dt,
            "http://www.w3.org/2001/XMLSchema#decimal"
                | "http://www.w3.org/2001/XMLSchema#double"
                | "http://www.w3.org/2001/XMLSchema#float"
        )
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Symbol-free rendering for contexts without a table at hand.
        match self {
            Const::Int(i) => write!(f, "{i}"),
            Const::Float(x) => write!(f, "{}", x.0),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Null => write!(f, "null"),
            other => write!(f, "{other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_total_order() {
        assert!(OrdF64(1.0) < OrdF64(2.0));
        assert_eq!(OrdF64(f64::NAN), OrdF64(f64::NAN));
        assert!(OrdF64(f64::NAN) > OrdF64(f64::INFINITY));
    }

    #[test]
    fn skolem_depth() {
        let t = SymbolTable::new();
        let f = t.intern("f");
        let flat = Const::skolem(f, vec![Const::Int(1)]);
        assert_eq!(flat.skolem_depth(), 1);
        let nested = Const::skolem(f, vec![flat.clone(), Const::Int(2)]);
        assert_eq!(nested.skolem_depth(), 2);
        let deeper = Const::skolem(f, vec![nested]);
        assert_eq!(deeper.skolem_depth(), 3);
        assert_eq!(Const::Int(5).skolem_depth(), 0);
    }

    #[test]
    fn skolem_identity_is_structural() {
        let t = SymbolTable::new();
        let f = t.intern("f");
        let a = Const::skolem(f, vec![Const::Int(1), Const::Null]);
        let b = Const::skolem(f, vec![Const::Int(1), Const::Null]);
        let c = Const::skolem(f, vec![Const::Int(2), Const::Null]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn numeric_views() {
        let t = SymbolTable::new();
        assert_eq!(Const::Int(3).as_f64(&t), Some(3.0));
        assert_eq!(Const::Float(OrdF64(2.5)).as_f64(&t), Some(2.5));
        let lex = t.intern("42");
        let dt = t.intern("http://www.w3.org/2001/XMLSchema#integer");
        let typed = Const::Typed(lex, dt);
        assert_eq!(typed.as_i64(&t), Some(42));
        assert_eq!(typed.as_f64(&t), Some(42.0));
        let s = Const::Str(t.intern("42"));
        assert_eq!(s.as_f64(&t), None, "plain strings are not numeric");
    }

    #[test]
    fn display_forms() {
        let t = SymbolTable::new();
        let iri = Const::Iri(t.intern("http://a"));
        assert_eq!(iri.display(&t), "<http://a>");
        let id = Const::skolem(t.intern("f1"), vec![Const::Int(7)]);
        assert_eq!(id.display(&t), "[f1|7]");
        assert_eq!(Const::Null.display(&t), "null");
    }
}
