//! Magic-sets demand transformation for recursive predicates.
//!
//! [`magic_sets_rewrite`] makes bottom-up evaluation goal-directed: when
//! every consumer of a recursive predicate binds the same argument
//! positions to constants (the classic case: a SPARQL property path with
//! a bound endpoint, whose translated consumer reads `ans_i(Id, c, Y,
//! D)`), the rewrite
//!
//! 1. seeds a fresh *magic* predicate with the consumers' constants
//!    (`magic(c)`),
//! 2. guards every defining rule with the magic predicate, so only
//!    demanded tuples are derived, and
//! 3. adds *demand rules* that propagate the magic set through the
//!    recursion (`magic(Y) :- magic(X), ans_2i(Id, X, Y, D)` for the
//!    transitive-closure shape),
//!
//! turning "compute the whole transitive closure, then filter" into
//! "explore only from the bound endpoint".
//!
//! The transformation is deliberately conservative — it restricts a
//! predicate only when that is provably invisible to every reader:
//! the predicate must be recursive, must not be an `@output`, must not
//! occur negated or in ground facts, must not be defined by an aggregate
//! rule, and *all* of its consumers must bind a common argument position
//! to a constant. Demand rules over-approximate demand (negations and
//! filter conditions of the defining rule are dropped from the demand
//! body), which is sound: a larger magic set derives a superset of the
//! demanded tuples, never a subset. Programs with no `@output` at all
//! (e.g. store materialisation, whose derived relations *are* the
//! store's content) are never rewritten.

use crate::database::Database;
use crate::fxhash::FxHashSet;
use crate::rule::{Atom, AtomArg, BodyItem, Program, Rule};
use crate::symbols::{Sym, SymbolTable};
use crate::value::Const;

/// Demand share of its value domain above which the rewrite is judged
/// not to prune ([`demand_prunes`]): a demand set covering half the
/// reachable values restricts (at most) half the derivations, which the
/// rewrite's own overhead — the demand fixpoint plus a guard join per
/// derived tuple — roughly cancels. Below it the restriction wins
/// outright (a bound endpoint on a 350-node chain demands ~10 nodes);
/// at or above it the guards are pure tax (a bound endpoint on a
/// strongly-connected graph demands *every* node).
pub const DEMAND_SELECTIVITY: f64 = 0.5;

/// Argument positions (bitmask) of `atom` holding constants.
fn const_mask(atom: &Atom) -> u64 {
    let mut m = 0u64;
    for (i, arg) in atom.args.iter().enumerate() {
        if matches!(arg, AtomArg::Const(_)) {
            m |= 1 << i;
        }
    }
    m
}

/// The positions set in `mask`, ascending.
fn positions(mask: u64) -> Vec<usize> {
    (0..64).filter(|i| mask & (1 << i) != 0).collect()
}

/// Applies the magic-sets demand transformation to every eligible
/// recursive predicate of `program`. Returns the rewritten program, or
/// `None` when no predicate qualifies (callers keep the original; the
/// rewrite never loses or adds answer tuples for the program's `@output`
/// predicates either way).
pub fn magic_sets_rewrite(program: &Program, symbols: &SymbolTable) -> Option<Program> {
    magic_sets_rewrite_analyzed(program, symbols).map(|rw| rw.program)
}

/// A successful magic-sets rewrite plus the metadata the demand-based
/// keep/demote decision needs ([`demand_subprogram`], [`demand_prunes`]).
///
/// Whether the rewrite pays off is not decidable from the program alone:
/// demand is a *reachability* property of the data. A bound endpoint on a
/// chain demands a short suffix; the same query shape on a
/// strongly-connected graph demands every node, restricting nothing while
/// still paying a guard join per derived tuple. Callers therefore
/// evaluate the (cheap, linear) demand subprogram first and keep the
/// rewrite only when the measured demand sets stay selective.
pub struct MagicRewrite {
    /// The rewritten program.
    pub program: Program,
    /// The magic (demand) predicates introduced, one per restricted
    /// candidate: after evaluation their relation sizes *are* the demand
    /// sets.
    pub magic_preds: Vec<Sym>,
    /// The restricted (guarded) predicates, parallel to `magic_preds`.
    pub guarded: Vec<Sym>,
    /// `(pred, column)` pairs demand values are drawn from (the prefix
    /// atom columns feeding each demand rule's head): the distinct values
    /// across these columns are the domain a demand set is judged
    /// against.
    demand_sources: Vec<(Sym, usize)>,
}

impl MagicRewrite {
    /// The kept rewrite with the demand machinery stripped: every rule
    /// the [`demand_subprogram`] measurement already fixpointed (the
    /// demand rules and their transitive support rules) and every fact it
    /// already loaded (the magic seeds) are removed, leaving only the
    /// guarded rules to run. Callers that evaluated the demand
    /// subprogram *into the same database* use this instead of
    /// [`MagicRewrite::program`], so the main evaluation reads the
    /// measured demand sets as plain EDB relations rather than
    /// re-deriving (and re-dedup-probing) every one of their facts.
    ///
    /// `None` exactly when [`demand_subprogram`] is `None` — without a
    /// measurable demand closure there is nothing already derived to
    /// reuse.
    pub fn without_demand(&self) -> Option<Program> {
        let (covered, needed) = demand_closure(self)?;
        let mut main = self.program.clone();
        let mut covered_iter = covered.into_iter();
        main.rules.retain(|_| !covered_iter.next().unwrap());
        main.facts.retain(|(p, _)| !needed.contains(p));
        Some(main)
    }
}

/// [`magic_sets_rewrite`] with the analysis metadata attached.
pub fn magic_sets_rewrite_analyzed(
    program: &Program,
    symbols: &SymbolTable,
) -> Option<MagicRewrite> {
    // No declared outputs means every derived relation may be read by
    // the caller (materialisation): nothing is safe to restrict.
    if program.outputs.is_empty() {
        return None;
    }

    let outputs: FxHashSet<Sym> = program.outputs.iter().copied().collect();
    let fact_preds: FxHashSet<Sym> = program.facts.iter().map(|(p, _)| *p).collect();
    let mut negated: FxHashSet<Sym> = FxHashSet::default();
    let mut agg_defined: FxHashSet<Sym> = FxHashSet::default();
    for rule in &program.rules {
        if rule.aggregate.is_some() {
            agg_defined.insert(rule.head.pred);
        }
        for item in &rule.body {
            if let BodyItem::Neg(a) = item {
                negated.insert(a.pred);
            }
        }
    }

    // Qualifying predicates with their demanded-position mask.
    let mut candidates: Vec<(Sym, u64)> = Vec::new();
    let idb: Vec<Sym> = program.idb_predicates();
    for &p in &idb {
        if outputs.contains(&p)
            || fact_preds.contains(&p)
            || negated.contains(&p)
            || agg_defined.contains(&p)
        {
            continue;
        }
        let defining: Vec<&Rule> = program.rules.iter().filter(|r| r.head.pred == p).collect();
        let recursive = defining.iter().any(|r| {
            r.body
                .iter()
                .any(|i| matches!(i, BodyItem::Pos(a) if a.pred == p))
        });
        if !recursive {
            continue;
        }
        // Head arguments at demanded positions must not be existential
        // (a magic guard would equate a fresh labelled null with a
        // demand constant).
        let arity = defining[0].head.args.len();
        if defining.iter().any(|r| r.head.args.len() != arity) {
            continue;
        }
        // Consumers: positive occurrences in rules not defining `p`.
        let mut demand: u64 = u64::MAX;
        let mut consumers = 0usize;
        let mut malformed = false;
        for rule in program.rules.iter().filter(|r| r.head.pred != p) {
            for item in &rule.body {
                if let BodyItem::Pos(a) = item {
                    if a.pred == p {
                        if a.args.len() != arity {
                            malformed = true;
                        }
                        demand &= const_mask(a);
                        consumers += 1;
                    }
                }
            }
        }
        if malformed || consumers == 0 {
            continue;
        }
        let demand = demand & ((1u64 << arity) - 1);
        if demand == 0 {
            continue;
        }
        let b = positions(demand);
        let safe = defining.iter().all(|r| {
            let existential: FxHashSet<_> = r.existential_vars().into_iter().collect();
            // Guard args: head args at the demanded positions.
            let guard_ok = b.iter().all(|&i| match &r.head.args[i] {
                AtomArg::Const(_) => true,
                AtomArg::Var(v) => !existential.contains(v),
            });
            // Every demand rule (one per recursive occurrence) must be
            // safe: its head variables bound by the guard or by the
            // kept prefix (positive atoms and assignments).
            let demand_ok = r.body.iter().enumerate().all(|(j, item)| {
                let occ = match item {
                    BodyItem::Pos(a) if a.pred == p => a,
                    _ => return true,
                };
                let mut bound: FxHashSet<u32> = FxHashSet::default();
                for &i in &b {
                    if let AtomArg::Var(v) = &r.head.args[i] {
                        bound.insert(*v);
                    }
                }
                for prev in &r.body[..j] {
                    match prev {
                        BodyItem::Pos(a) => bound.extend(a.vars()),
                        BodyItem::Assign(v, _) => {
                            bound.insert(*v);
                        }
                        _ => {}
                    }
                }
                b.iter().all(|&i| match &occ.args[i] {
                    AtomArg::Const(_) => true,
                    AtomArg::Var(v) => bound.contains(v),
                })
            });
            guard_ok && demand_ok
        });
        if safe {
            candidates.push((p, demand));
        }
    }

    // Candidates whose defining rules read another candidate are dropped:
    // a demand rule for one would become an unseeded consumer of the
    // other. (Conservative; nested one-or-more paths keep the outer
    // predicate only when the inner one did not qualify anyway.)
    let qualifying: FxHashSet<Sym> = candidates.iter().map(|&(p, _)| p).collect();
    candidates.retain(|&(p, _)| {
        program.rules.iter().filter(|r| r.head.pred == p).all(|r| {
            r.body.iter().all(|item| match item {
                BodyItem::Pos(a) => a.pred == p || !qualifying.contains(&a.pred),
                _ => true,
            })
        })
    });
    if candidates.is_empty() {
        return None;
    }

    // All predicate symbols in use, for collision-free magic names.
    let mut used: FxHashSet<Sym> = fact_preds;
    used.extend(outputs.iter().copied());
    for rule in &program.rules {
        used.insert(rule.head.pred);
        for item in &rule.body {
            if let BodyItem::Pos(a) | BodyItem::Neg(a) = item {
                used.insert(a.pred);
            }
        }
    }

    let mut out = program.clone();
    let mut magic_preds = Vec::new();
    let mut guarded = Vec::new();
    let mut demand_sources: Vec<(Sym, usize)> = Vec::new();
    for (p, demand) in candidates {
        let b = positions(demand);
        let base = symbols.resolve(p);
        let mut magic_p = symbols.intern(&format!("{base}__magic"));
        let mut n = 1usize;
        while used.contains(&magic_p) {
            n += 1;
            magic_p = symbols.intern(&format!("{base}__magic{n}"));
        }
        used.insert(magic_p);
        magic_preds.push(magic_p);
        guarded.push(p);

        // Seed facts from the consumers' constants.
        for rule in program.rules.iter().filter(|r| r.head.pred != p) {
            for item in &rule.body {
                if let BodyItem::Pos(a) = item {
                    if a.pred == p {
                        let seed: Vec<Const> = b
                            .iter()
                            .map(|&i| match &a.args[i] {
                                AtomArg::Const(c) => c.clone(),
                                AtomArg::Var(_) => unreachable!("demanded position is constant"),
                            })
                            .collect();
                        if !out.facts.contains(&(magic_p, seed.clone())) {
                            out.facts.push((magic_p, seed));
                        }
                    }
                }
            }
        }

        // Guard defining rules and emit demand rules.
        let mut demand_rules = Vec::new();
        for rule in out.rules.iter_mut().filter(|r| r.head.pred == p) {
            let guard = Atom::new(
                magic_p,
                b.iter().map(|&i| rule.head.args[i].clone()).collect(),
            );
            for (j, item) in rule.body.iter().enumerate() {
                let occ = match item {
                    BodyItem::Pos(a) if a.pred == p => a,
                    _ => continue,
                };
                // Record where this demand rule's head values come from:
                // the last prefix atom column holding each demanded
                // variable (variables bound only by the guard or an
                // assignment add no source — their values are already in
                // the demand set).
                for &i in &b {
                    let AtomArg::Var(v) = &occ.args[i] else {
                        continue;
                    };
                    'src: for prev in rule.body[..j].iter().rev() {
                        let BodyItem::Pos(a) = prev else { continue };
                        if a.pred == p {
                            continue;
                        }
                        for (col, arg) in a.args.iter().enumerate() {
                            if matches!(arg, AtomArg::Var(w) if w == v) {
                                if !demand_sources.contains(&(a.pred, col)) {
                                    demand_sources.push((a.pred, col));
                                }
                                break 'src;
                            }
                        }
                    }
                }
                let mut body = vec![BodyItem::Pos(guard.clone())];
                body.extend(rule.body[..j].iter().filter_map(|prev| match prev {
                    BodyItem::Pos(_) | BodyItem::Assign(..) => Some(prev.clone()),
                    // Dropping negations and filters over-approximates
                    // demand — sound, the magic set only grows.
                    BodyItem::Neg(_) | BodyItem::Cond(_) => None,
                }));
                demand_rules.push(Rule {
                    head: Atom::new(magic_p, b.iter().map(|&i| occ.args[i].clone()).collect()),
                    body,
                    aggregate: None,
                    var_names: rule.var_names.clone(),
                });
            }
            rule.body.insert(0, BodyItem::Pos(guard));
        }
        out.rules.extend(demand_rules);
    }
    Some(MagicRewrite {
        program: out,
        magic_preds,
        guarded,
        demand_sources,
    })
}

/// The self-contained support subprogram that derives `rw`'s demand
/// (magic) sets without touching the guarded predicates: the demand rules
/// plus, transitively, every rule defining a predicate they read.
/// Evaluating it costs one fixpoint linear in the demanded subgraph, and
/// every fact it derives is one the subsequently chosen program —
/// rewritten or plain — re-derives identically, so the measurement's
/// residue is pure dedup.
///
/// Returns `None` when the closure is not self-contained: it reads a
/// guarded predicate (the measurement would underestimate demand) or
/// contains an existential rule (its labelled nulls make re-derivation
/// more than a dedup). Callers then skip the measurement and keep the
/// rewrite.
pub fn demand_subprogram(rw: &MagicRewrite) -> Option<Program> {
    let (keep, needed) = demand_closure(rw)?;
    let mut sub = rw.program.clone();
    let mut keep_iter = keep.into_iter();
    sub.rules.retain(|_| keep_iter.next().unwrap());
    sub.facts.retain(|(p, _)| needed.contains(p));
    sub.outputs = rw.magic_preds.clone();
    sub.post.clear();
    Some(sub)
}

/// The demanded-support closure behind [`demand_subprogram`] /
/// [`MagicRewrite::without_demand`]: which rules (by index) and which
/// predicates the demand fixpoint covers. `None` under exactly the
/// conditions `demand_subprogram` documents (guarded read, existential
/// rule, `@post` on a support predicate).
fn demand_closure(rw: &MagicRewrite) -> Option<(Vec<bool>, FxHashSet<Sym>)> {
    let guarded: FxHashSet<Sym> = rw.guarded.iter().copied().collect();
    let mut needed: FxHashSet<Sym> = rw.magic_preds.iter().copied().collect();
    let mut frontier: Vec<Sym> = rw.magic_preds.clone();
    let mut keep = vec![false; rw.program.rules.len()];
    while let Some(p) = frontier.pop() {
        for (idx, rule) in rw.program.rules.iter().enumerate() {
            if rule.head.pred != p || keep[idx] {
                continue;
            }
            keep[idx] = true;
            if !rule.existential_vars().is_empty() {
                return None;
            }
            for item in &rule.body {
                if let BodyItem::Pos(a) | BodyItem::Neg(a) = item {
                    if guarded.contains(&a.pred) {
                        return None;
                    }
                    if needed.insert(a.pred) {
                        frontier.push(a.pred);
                    }
                }
            }
        }
    }
    // A `@post` directive on a support predicate would make the
    // measurement more than a pure dedup too (e.g. a truncation).
    if rw.program.post.iter().any(|(p, _)| needed.contains(p)) {
        return None;
    }
    Some((keep, needed))
}

/// Judges a saturated demand fixpoint: `db` holds the evaluated
/// [`demand_subprogram`], so the magic relations' sizes are the demand
/// sets and the distinct values across the recorded source columns are
/// the domain demand could have covered. True iff demand stayed under
/// [`DEMAND_SELECTIVITY`] of that domain — the rewrite restricts enough
/// to outweigh its guard joins. On a strongly-connected graph demand
/// saturates the domain and this returns false (measured: the rewrite
/// cost ~33% extra on a 120-node ring before this demotion existed).
pub fn demand_prunes(rw: &MagicRewrite, db: &Database) -> bool {
    let demand: usize = rw
        .magic_preds
        .iter()
        .map(|&p| db.relation(p).map_or(0, |r| r.len()))
        .sum();
    let mut domain: FxHashSet<u64> = FxHashSet::default();
    for &(pred, col) in &rw.demand_sources {
        if let Some(rel) = db.relation(pred) {
            for i in 0..rel.len() {
                if let Some(id) = rel.row(i as u32).get(col) {
                    domain.insert(id.raw());
                }
            }
        }
    }
    (demand as f64) < DEMAND_SELECTIVITY * domain.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::eval::{evaluate, EvalOptions};
    use crate::parser::parse_program;

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        let e = db.symbols().intern("edge");
        let rows: Vec<Vec<Const>> = (0..n)
            .map(|i| vec![Const::Int(i), Const::Int(i + 1)])
            .collect();
        db.load_rows(e, &rows);
        db
    }

    /// Options that neither re-apply the rewrite nor replan, so the test
    /// compares exactly the programs it built.
    fn raw_options() -> EvalOptions {
        EvalOptions {
            magic_sets: false,
            plan: false,
            threads: Some(1),
            ..Default::default()
        }
    }

    const TC_SRC: &str = "tc(X, Y) :- edge(X, Y).\n\
                          tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
                          out(Z) :- tc(90, Z).\n\
                          @output(\"out\").\n";

    #[test]
    fn bound_endpoint_tc_is_rewritten_and_equal() {
        let mut db = chain_db(100);
        let prog = parse_program(TC_SRC, db.symbols()).unwrap();
        let magic = magic_sets_rewrite(&prog, db.symbols()).expect("tc qualifies");

        let mut db2 = chain_db(100);
        // Share one symbol table so preds resolve identically.
        let prog2 = parse_program(TC_SRC, db2.symbols()).unwrap();
        let magic2 = magic_sets_rewrite(&prog2, db2.symbols()).unwrap();

        evaluate(&prog, &mut db, &raw_options()).unwrap();
        evaluate(&magic2, &mut db2, &raw_options()).unwrap();
        let _ = magic;

        let out1 = db.symbols().get("out").unwrap();
        let out2 = db2.symbols().get("out").unwrap();
        let mut a: Vec<Vec<Const>> = db
            .relation(out1)
            .unwrap()
            .iter()
            .map(|t| db.decode_tuple(t))
            .collect();
        let mut b: Vec<Vec<Const>> = db2
            .relation(out2)
            .unwrap()
            .iter()
            .map(|t| db2.decode_tuple(t))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "same answers");
        assert_eq!(a.len(), 10, "nodes 91..=100 reachable from 90");

        // The magic run derived a small fraction of the closure.
        let tc1 = db.symbols().get("tc").unwrap();
        let tc2 = db2.symbols().get("tc").unwrap();
        let full = db.relation(tc1).unwrap().len();
        let restricted = db2.relation(tc2).unwrap().len();
        assert_eq!(full, 100 * 101 / 2, "full closure of a 100-edge chain");
        assert!(
            restricted < full / 10,
            "magic restricted: {restricted} vs {full}"
        );
    }

    #[test]
    fn unbound_consumers_block_the_rewrite() {
        let t = SymbolTable::new();
        let prog = parse_program(
            "tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
             out(X, Z) :- tc(X, Z).\n\
             @output(\"out\").\n",
            &t,
        )
        .unwrap();
        assert!(magic_sets_rewrite(&prog, &t).is_none());
    }

    #[test]
    fn output_predicates_are_never_restricted() {
        let t = SymbolTable::new();
        let prog = parse_program(
            "tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
             out(Z) :- tc(7, Z).\n\
             @output(\"out\").\n@output(\"tc\").\n",
            &t,
        )
        .unwrap();
        assert!(magic_sets_rewrite(&prog, &t).is_none());
    }

    #[test]
    fn programs_without_outputs_are_untouched() {
        let t = SymbolTable::new();
        let prog = parse_program(
            "tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
             out(Z) :- tc(7, Z).\n",
            &t,
        )
        .unwrap();
        assert!(magic_sets_rewrite(&prog, &t).is_none());
    }

    #[test]
    fn negated_recursive_predicates_are_skipped() {
        let t = SymbolTable::new();
        let prog = parse_program(
            "tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
             out(Z) :- node(Z), not tc(7, Z).\n\
             @output(\"out\").\n",
            &t,
        )
        .unwrap();
        assert!(magic_sets_rewrite(&prog, &t).is_none());
    }

    /// Satellite of the measured demotion: once the demand fixpoint has
    /// been evaluated into the database, the kept rewrite should run
    /// *without* its demand rules and magic seeds — re-deriving them
    /// stages every demand fact into the dedup probe for nothing. The
    /// `staged` counter is the witness.
    #[test]
    fn without_demand_reuses_the_measured_fixpoint() {
        // Two identical worlds: both evaluate the demand subprogram
        // first (as the measured-demotion path does), then one runs the
        // full rewrite and the other the stripped remainder.
        let run = |strip: bool| {
            let mut db = chain_db(100);
            let prog = parse_program(TC_SRC, db.symbols()).unwrap();
            let rw = magic_sets_rewrite_analyzed(&prog, db.symbols()).expect("tc qualifies");
            let sub = demand_subprogram(&rw).expect("self-contained closure");
            evaluate(&sub, &mut db, &raw_options()).unwrap();
            assert!(demand_prunes(&rw, &db), "chain demand stays selective");
            let main = if strip {
                rw.without_demand().expect("measurable closure")
            } else {
                rw.program.clone()
            };
            let stats = evaluate(&main, &mut db, &raw_options()).unwrap();
            let out = db.symbols().get("out").unwrap();
            let mut rows: Vec<Vec<Const>> = db
                .relation(out)
                .unwrap()
                .iter()
                .map(|t| db.decode_tuple(t))
                .collect();
            rows.sort();
            (rows, stats)
        };
        let (rows_full, stats_full) = run(false);
        let (rows_stripped, stats_stripped) = run(true);
        assert_eq!(rows_full, rows_stripped, "same answers either way");
        assert_eq!(rows_full.len(), 10, "nodes 91..=100 reachable from 90");
        assert!(
            stats_stripped.staged < stats_full.staged,
            "stripped rewrite must not re-stage the demand facts: \
             {} staged vs {} with demand rules kept",
            stats_stripped.staged,
            stats_full.staged
        );
        // Nothing the demand fixpoint derived is derived again: every
        // derivation of the stripped run is a genuinely new guarded fact.
        assert_eq!(stats_stripped.derived, stats_full.derived);
    }

    #[test]
    fn multiple_bound_consumers_all_seed() {
        let mut db = chain_db(50);
        let src = "tc(X, Y) :- edge(X, Y).\n\
                   tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
                   out(Z) :- tc(10, Z).\n\
                   out(Z) :- tc(40, Z).\n\
                   @output(\"out\").\n";
        let prog = parse_program(src, db.symbols()).unwrap();
        let magic = magic_sets_rewrite(&prog, db.symbols()).expect("both consumers bind X");
        evaluate(&magic, &mut db, &raw_options()).unwrap();
        let out = db.symbols().get("out").unwrap();
        // From 10: 11..=50 (40 rows); from 40: 41..=50 (10 rows, subset).
        assert_eq!(db.relation(out).unwrap().len(), 40);
    }
}
