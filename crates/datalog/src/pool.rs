//! A dependency-free scoped worker pool shared by the evaluator's
//! intra-query parallelism (PR 2) and the façade's inter-query batch
//! fan-out.
//!
//! The pool is a set of persistent threads parked on a condvar. Each
//! *pass* publishes a job count and a closure; every thread (the caller
//! included) claims job indices from a shared counter until the pass
//! drains. One pool instance lives for the duration of one logical
//! parallel section — rounds of a fixpoint, or one query batch — so
//! repeated passes reuse the threads instead of respawning them.
//!
//! Two entry styles exist:
//!
//! * [`run_scoped`] — the one-shot convenience used for embarrassingly
//!   parallel job lists (a query batch): spawns a scoped pool, runs the
//!   jobs, tears the pool down.
//! * `Pool` directly (crate-internal) — the evaluator keeps one pool
//!   across many passes and drives it through `Pool::run`.

use std::sync::{Condvar, Mutex};

/// A raw pointer to the current pass's job closure. Only ever dereferenced
/// between `Pool::run` publishing it and `Pool::run` observing all jobs
/// complete, during which the closure is alive on the caller's stack.
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the referent is `Sync` (shared-access safe) and `Pool::run`
// bounds its lifetime as described above.
unsafe impl Send for TaskRef {}

#[derive(Default)]
struct PoolState {
    /// The published job closure of the active pass, if any.
    task: Option<TaskRef>,
    /// Number of jobs in the active pass.
    njobs: usize,
    /// Next unclaimed job index.
    next: usize,
    /// Jobs not yet completed.
    pending: usize,
    shutdown: bool,
}

/// A pool of persistent scoped worker threads. Workers park on a condvar
/// between passes; each pass publishes a job-count and a closure, every
/// thread (the caller included) claims job indices from a shared counter,
/// and `run` returns once all jobs completed.
pub(crate) struct Pool {
    pub(crate) threads: usize,
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

/// Decrements `pending` when dropped, so a panicking job cannot leave
/// `Pool::run` waiting forever (the panic itself propagates through
/// `std::thread::scope`).
struct PendingGuard<'a>(&'a Pool);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let mut g = self.0.state.lock().unwrap();
        g.pending -= 1;
        if g.pending == 0 {
            self.0.done.notify_all();
        }
    }
}

/// Calls [`Pool::shutdown`] when dropped — including during a panic
/// unwind. Without this, a panic in a job claimed by the *calling*
/// thread would skip the shutdown call, leave the workers parked on the
/// condvar forever, and deadlock `std::thread::scope`'s implicit join
/// instead of propagating the panic.
pub(crate) struct ShutdownGuard<'a>(pub(crate) &'a Pool);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

impl Pool {
    pub(crate) fn new(threads: usize) -> Pool {
        Pool {
            threads,
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Runs `f(0..njobs)` across the pool (and the calling thread),
    /// returning when every job has completed.
    pub(crate) fn run(&self, njobs: usize, f: &(dyn Fn(usize) + Sync)) {
        if njobs == 0 {
            return;
        }
        // SAFETY: erase the closure's stack lifetime to store it in the
        // shared cell. `run` does not return until `pending == 0`, i.e.
        // until no worker can still hold (or claim a job against) the
        // pointer, and clears the cell before returning.
        let erased: *const (dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        };
        {
            let mut g = self.state.lock().unwrap();
            g.task = Some(TaskRef(erased));
            g.njobs = njobs;
            g.next = 0;
            g.pending = njobs;
            self.work.notify_all();
        }
        // The caller claims jobs like any worker.
        loop {
            let j = {
                let mut g = self.state.lock().unwrap();
                if g.next < g.njobs {
                    g.next += 1;
                    Some(g.next - 1)
                } else {
                    None
                }
            };
            match j {
                Some(j) => {
                    let _guard = PendingGuard(self);
                    f(j);
                }
                None => break,
            }
        }
        let mut g = self.state.lock().unwrap();
        while g.pending > 0 {
            g = self.done.wait(g).unwrap();
        }
        g.task = None;
        g.njobs = 0;
        g.next = 0;
    }

    /// The worker thread body.
    pub(crate) fn worker(&self) {
        loop {
            let (task, j) = {
                let mut g = self.state.lock().unwrap();
                loop {
                    if g.shutdown {
                        return;
                    }
                    if g.next < g.njobs {
                        break;
                    }
                    g = self.work.wait(g).unwrap();
                }
                let j = g.next;
                g.next += 1;
                (g.task.as_ref().expect("jobs imply a task").0, j)
            };
            let _guard = PendingGuard(self);
            // SAFETY: `j` was claimed while the task was published, so
            // `Pool::run` cannot return (and the closure cannot die)
            // until our guard decrements `pending`.
            unsafe { (*task)(j) };
        }
    }

    pub(crate) fn shutdown(&self) {
        let mut g = self.state.lock().unwrap();
        g.shutdown = true;
        self.work.notify_all();
    }
}

/// Runs `f(0)..f(njobs - 1)` across up to `threads` scoped worker threads
/// (the calling thread included) and returns once every job completed.
///
/// With `threads <= 1` or `njobs <= 1` the jobs simply run inline on the
/// calling thread, in order — the deterministic fallback. Job *claiming*
/// order under parallelism is nondeterministic; callers that need ordered
/// results should write into a per-job slot, as
/// `FrozenDatabase::execute_batch` does.
///
/// Panics in a job propagate to the caller (via `std::thread::scope`)
/// after the remaining jobs drain or panic themselves.
pub fn run_scoped(threads: usize, njobs: usize, f: &(dyn Fn(usize) + Sync)) {
    if threads <= 1 || njobs <= 1 {
        for j in 0..njobs {
            f(j);
        }
        return;
    }
    let pool = Pool::new(threads.min(njobs));
    std::thread::scope(|s| {
        for _ in 1..pool.threads {
            s.spawn(|| pool.worker());
        }
        // Shutdown-on-drop: a panicking job on the calling thread must
        // still unpark the workers, or the scope's join deadlocks.
        let _guard = ShutdownGuard(&pool);
        pool.run(njobs, f);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_scoped_runs_every_job_once() {
        for threads in [1, 2, 4, 8] {
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            run_scoped(threads, hits.len(), &|j| {
                hits[j].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}: every job exactly once"
            );
        }
    }

    #[test]
    fn run_scoped_zero_and_single_job() {
        run_scoped(4, 0, &|_| panic!("no jobs to run"));
        let hit = AtomicUsize::new(0);
        run_scoped(4, 1, &|j| {
            assert_eq!(j, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_job_propagates_instead_of_deadlocking() {
        // A panic in a job claimed by the calling thread must unwind out
        // of run_scoped (shutting the workers down on the way), not hang
        // the scope's join forever.
        let result = std::panic::catch_unwind(|| {
            run_scoped(4, 8, &|j| {
                if j == 0 {
                    panic!("job 0 fails");
                }
            });
        });
        assert!(result.is_err(), "the job's panic reaches the caller");
    }

    #[test]
    fn pool_reuse_across_passes() {
        let pool = Pool::new(4);
        std::thread::scope(|s| {
            for _ in 1..pool.threads {
                s.spawn(|| pool.worker());
            }
            let count = AtomicUsize::new(0);
            for pass in 1..=5usize {
                pool.run(pass * 3, &|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            assert_eq!(count.load(Ordering::Relaxed), 3 + 6 + 9 + 12 + 15);
            pool.shutdown();
        });
    }
}
