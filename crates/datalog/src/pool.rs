//! A dependency-free scoped worker pool shared by the evaluator's
//! intra-query parallelism (PR 2) and the façade's inter-query batch
//! fan-out.
//!
//! The pool is a set of persistent threads parked on a condvar. Each
//! *pass* publishes a job count and a closure; every thread (the caller
//! included) claims job indices from a shared counter until the pass
//! drains. One pool instance lives for the duration of one logical
//! parallel section — rounds of a fixpoint, or one query batch — so
//! repeated passes reuse the threads instead of respawning them.
//!
//! **Panic containment (PR 7).** A panic inside a job is caught at the
//! job boundary and reported as a per-job [`JobPanic`] instead of
//! unwinding through the pool: the worker thread survives and keeps
//! claiming jobs, the pass drains normally, and the caller decides what a
//! poisoned job means (the evaluator converts it to
//! [`EvalError::Internal`](crate::EvalError::Internal); the batch façade
//! fails that one query and keeps its siblings). This is what
//! distinguishes "job panicked" from "scope cancelled": only pool
//! *shutdown* tears threads down, never a job failure.
//!
//! Two entry styles exist:
//!
//! * [`run_scoped`] / [`run_scoped_caught`] — the one-shot conveniences
//!   used for embarrassingly parallel job lists (a query batch): spawn a
//!   scoped pool, run the jobs, tear the pool down.
//! * `Pool` directly (crate-internal) — the evaluator keeps one pool
//!   across many passes and drives it through `Pool::run`.

use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex};

/// A raw pointer to the current pass's job closure. Only ever dereferenced
/// between `Pool::run` publishing it and `Pool::run` observing all jobs
/// complete, during which the closure is alive on the caller's stack.
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the referent is `Sync` (shared-access safe) and `Pool::run`
// bounds its lifetime as described above.
unsafe impl Send for TaskRef {}

/// A job that panicked during a pass: its index and the panic payload
/// rendered to a string. Returned by [`run_scoped_caught`] (and
/// crate-internally by `Pool::run`) so callers can fail the one job
/// without losing the rest of the pass.
#[derive(Debug, Clone)]
pub struct JobPanic {
    /// The job index that was passed to the closure.
    pub job: usize,
    /// The panic payload (`&str`/`String` payloads verbatim; anything
    /// else a placeholder).
    pub message: String,
}

/// Renders a caught panic payload for [`JobPanic::message`].
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[derive(Default)]
struct PoolState {
    /// The published job closure of the active pass, if any.
    task: Option<TaskRef>,
    /// Number of jobs in the active pass.
    njobs: usize,
    /// Next unclaimed job index.
    next: usize,
    /// Jobs not yet completed.
    pending: usize,
    /// Jobs of the active pass that panicked (drained by `Pool::run`).
    panics: Vec<JobPanic>,
    shutdown: bool,
}

/// A pool of persistent scoped worker threads. Workers park on a condvar
/// between passes; each pass publishes a job-count and a closure, every
/// thread (the caller included) claims job indices from a shared counter,
/// and `run` returns once all jobs completed.
pub(crate) struct Pool {
    pub(crate) threads: usize,
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

/// Decrements `pending` when dropped, so no exit path from a job — normal
/// completion or a caught panic — can leave `Pool::run` waiting forever.
struct PendingGuard<'a>(&'a Pool);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let mut g = self.0.state.lock().unwrap();
        g.pending -= 1;
        if g.pending == 0 {
            self.0.done.notify_all();
        }
    }
}

/// Calls [`Pool::shutdown`] when dropped — including during a panic
/// unwind. Job panics are caught at the job boundary, but a panic in the
/// *caller's* code between passes (e.g. the evaluator's sequential merge)
/// must still unpark the workers, or `std::thread::scope`'s implicit join
/// would deadlock instead of propagating.
pub(crate) struct ShutdownGuard<'a>(pub(crate) &'a Pool);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

impl Pool {
    pub(crate) fn new(threads: usize) -> Pool {
        Pool {
            threads,
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Runs one claimed job, catching a panic as a per-job record. The
    /// guard decrements `pending` on both exit paths.
    fn run_job(&self, f: &(dyn Fn(usize) + Sync), j: usize) {
        let _guard = PendingGuard(self);
        if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(|| f(j))) {
            let message = payload_message(payload);
            self.state
                .lock()
                .unwrap()
                .panics
                .push(JobPanic { job: j, message });
        }
    }

    /// Runs `f(0..njobs)` across the pool (and the calling thread),
    /// returning when every job has completed. Jobs that panicked are
    /// returned as [`JobPanic`] records, in claim order; the pool itself
    /// survives and can run further passes.
    pub(crate) fn run(&self, njobs: usize, f: &(dyn Fn(usize) + Sync)) -> Vec<JobPanic> {
        if njobs == 0 {
            return Vec::new();
        }
        // SAFETY: erase the closure's stack lifetime to store it in the
        // shared cell. `run` does not return until `pending == 0`, i.e.
        // until no worker can still hold (or claim a job against) the
        // pointer, and clears the cell before returning.
        let erased: *const (dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        };
        {
            let mut g = self.state.lock().unwrap();
            g.task = Some(TaskRef(erased));
            g.njobs = njobs;
            g.next = 0;
            g.pending = njobs;
            g.panics.clear();
            self.work.notify_all();
        }
        // The caller claims jobs like any worker.
        loop {
            let j = {
                let mut g = self.state.lock().unwrap();
                if g.next < g.njobs {
                    g.next += 1;
                    Some(g.next - 1)
                } else {
                    None
                }
            };
            match j {
                Some(j) => self.run_job(f, j),
                None => break,
            }
        }
        let mut g = self.state.lock().unwrap();
        while g.pending > 0 {
            g = self.done.wait(g).unwrap();
        }
        g.task = None;
        g.njobs = 0;
        g.next = 0;
        std::mem::take(&mut g.panics)
    }

    /// The worker thread body.
    pub(crate) fn worker(&self) {
        loop {
            let (task, j) = {
                let mut g = self.state.lock().unwrap();
                loop {
                    if g.shutdown {
                        return;
                    }
                    if g.next < g.njobs {
                        break;
                    }
                    g = self.work.wait(g).unwrap();
                }
                let j = g.next;
                g.next += 1;
                (g.task.as_ref().expect("jobs imply a task").0, j)
            };
            // SAFETY: `j` was claimed while the task was published, so
            // `Pool::run` cannot return (and the closure cannot die)
            // until `run_job`'s guard decrements `pending`.
            self.run_job(unsafe { &*task }, j);
        }
    }

    pub(crate) fn shutdown(&self) {
        let mut g = self.state.lock().unwrap();
        g.shutdown = true;
        self.work.notify_all();
    }
}

/// Runs `f(0)..f(njobs - 1)` across up to `threads` scoped worker threads
/// (the calling thread included), returning once every job completed.
/// Jobs that panicked are reported as [`JobPanic`] records (in claim
/// order) instead of unwinding: one poisoned job never takes down its
/// siblings, and all worker threads rejoin normally.
///
/// With `threads <= 1` or `njobs <= 1` the jobs simply run inline on the
/// calling thread, in order — the deterministic fallback (panics are
/// caught the same way). Job *claiming* order under parallelism is
/// nondeterministic; callers that need ordered results should write into
/// a per-job slot, as `FrozenDatabase::execute_batch` does.
pub fn run_scoped_caught(
    threads: usize,
    njobs: usize,
    f: &(dyn Fn(usize) + Sync),
) -> Vec<JobPanic> {
    if threads <= 1 || njobs <= 1 {
        let mut panics = Vec::new();
        for j in 0..njobs {
            if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(|| f(j))) {
                panics.push(JobPanic {
                    job: j,
                    message: payload_message(payload),
                });
            }
        }
        return panics;
    }
    let pool = Pool::new(threads.min(njobs));
    std::thread::scope(|s| {
        for _ in 1..pool.threads {
            s.spawn(|| pool.worker());
        }
        // Shutdown-on-drop keeps the scope's implicit join safe even if
        // something outside the job boundary unwinds.
        let _guard = ShutdownGuard(&pool);
        pool.run(njobs, f)
    })
}

/// [`run_scoped_caught`] for callers without per-job error channels: a
/// panic in any job is re-raised on the calling thread (after the whole
/// pass drained and the workers rejoined), preserving the historical
/// fail-fast contract.
pub fn run_scoped(threads: usize, njobs: usize, f: &(dyn Fn(usize) + Sync)) {
    if let Some(p) = run_scoped_caught(threads, njobs, f).into_iter().next() {
        panic!("pool job {} panicked: {}", p.job, p.message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_scoped_runs_every_job_once() {
        for threads in [1, 2, 4, 8] {
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            run_scoped(threads, hits.len(), &|j| {
                hits[j].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}: every job exactly once"
            );
        }
    }

    #[test]
    fn run_scoped_zero_and_single_job() {
        run_scoped(4, 0, &|_| panic!("no jobs to run"));
        let hit = AtomicUsize::new(0);
        run_scoped(4, 1, &|j| {
            assert_eq!(j, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_job_propagates_instead_of_deadlocking() {
        // run_scoped keeps the historical fail-fast contract: the caught
        // job panic is re-raised on the caller after the pass drains —
        // never a deadlocked scope join.
        let result = std::panic::catch_unwind(|| {
            run_scoped(4, 8, &|j| {
                if j == 0 {
                    panic!("job 0 fails");
                }
            });
        });
        assert!(result.is_err(), "the job's panic reaches the caller");
    }

    #[test]
    fn caught_panic_leaves_sibling_jobs_intact() {
        for threads in [1, 2, 4] {
            let hits: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
            let panics = run_scoped_caught(threads, hits.len(), &|j| {
                if j == 3 || j == 11 {
                    panic!("poisoned job {j}");
                }
                hits[j].fetch_add(1, Ordering::Relaxed);
            });
            let mut failed: Vec<usize> = panics.iter().map(|p| p.job).collect();
            failed.sort_unstable();
            assert_eq!(failed, vec![3, 11], "threads={threads}");
            assert!(panics.iter().all(|p| p.message.contains("poisoned job")));
            for (j, h) in hits.iter().enumerate() {
                let expect = usize::from(j != 3 && j != 11);
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    expect,
                    "threads={threads} job {j}"
                );
            }
        }
    }

    #[test]
    fn pool_survives_panicking_pass_and_runs_next_pass() {
        // A pass with a panicking job must leave the pool healthy: the
        // worker threads stay parked on the condvar and the next pass
        // runs to completion. This is the "job panicked ≠ scope
        // cancelled" distinction.
        let pool = Pool::new(4);
        std::thread::scope(|s| {
            for _ in 1..pool.threads {
                s.spawn(|| pool.worker());
            }
            let panics = pool.run(8, &|j| {
                if j % 2 == 0 {
                    panic!("even jobs fail");
                }
            });
            assert_eq!(panics.len(), 4);
            let count = AtomicUsize::new(0);
            let panics = pool.run(12, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert!(panics.is_empty());
            assert_eq!(count.load(Ordering::Relaxed), 12);
            pool.shutdown();
        });
    }

    #[test]
    fn pool_reuse_across_passes() {
        let pool = Pool::new(4);
        std::thread::scope(|s| {
            for _ in 1..pool.threads {
                s.spawn(|| pool.worker());
            }
            let count = AtomicUsize::new(0);
            for pass in 1..=5usize {
                let panics = pool.run(pass * 3, &|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
                assert!(panics.is_empty());
            }
            assert_eq!(count.load(Ordering::Relaxed), 3 + 6 + 9 + 12 + 15);
            pool.shutdown();
        });
    }
}
