//! Stratification of programs with negation and aggregation.
//!
//! The SPARQL translation only produces *stratified* negation: the negated
//! auxiliary predicates (`ans_opt_i`, `ans_equal_i`, `ans_ask_i`) are
//! always defined from strictly earlier subpatterns of the parse tree. The
//! stratifier verifies this structurally: negative (and aggregate) edges
//! must not occur on a cycle of the predicate dependency graph.
//!
//! Algorithm: Bellman-Ford-style relaxation of stratum numbers. `head ≥
//! body` for positive edges, `head ≥ body + 1` for negative/aggregate
//! edges. If a stratum exceeds the number of IDB predicates, negation is
//! cyclic and an error is reported.

use crate::fxhash::FxHashMap;
use crate::rule::{BodyItem, Program};
use crate::symbols::{Sym, SymbolTable};

/// A stratification error (cyclic negation or aggregation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratifyError(pub String);

impl std::fmt::Display for StratifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stratification error: {}", self.0)
    }
}

impl std::error::Error for StratifyError {}

/// The result: rule indices grouped by stratum, in evaluation order,
/// plus the per-rule read/write sets the parallel executor uses to
/// justify running a stratum round's rules concurrently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratification {
    /// `strata[s]` = the indices (into `program.rules`) evaluated in
    /// stratum `s`.
    pub strata: Vec<Vec<usize>>,
    /// Stratum of each IDB predicate.
    pub pred_stratum: FxHashMap<Sym, usize>,
    /// `rule_reads[r]` = predicates rule `r`'s body consults.
    pub rule_reads: Vec<Vec<Sym>>,
    /// `rule_writes[r]` = the predicate rule `r` derives into.
    pub rule_writes: Vec<Sym>,
}

impl Stratification {
    /// The write set of a stratum: the predicates derived by its rules —
    /// the predicates whose deltas drive that stratum's semi-naive
    /// rounds.
    pub fn stratum_writes(&self, stratum: &[usize]) -> Vec<Sym> {
        let mut out = Vec::new();
        for &ri in stratum {
            let w = self.rule_writes[ri];
            if !out.contains(&w) {
                out.push(w);
            }
        }
        out
    }

    /// Proof obligation of the parallel executor: rules evaluated in one
    /// snapshot pass are pairwise independent — no rule's *negated* or
    /// aggregated reads overlap the pass's write set (guaranteed by
    /// stratification), so concurrent evaluation against the frozen
    /// snapshot plus a sequential merge is equivalent to any serial
    /// order. Returns `false` if the invariant is violated (which would
    /// be a stratifier bug).
    pub fn pass_is_independent(&self, stratum: &[usize], program: &crate::rule::Program) -> bool {
        let writes = self.stratum_writes(stratum);
        stratum.iter().all(|&ri| {
            program.rules[ri].body.iter().all(
                |item| !matches!(item, crate::rule::BodyItem::Neg(a) if writes.contains(&a.pred)),
            ) && (program.rules[ri].aggregate.is_none()
                || self.rule_reads[ri].iter().all(|p| !writes.contains(p)))
        })
    }
}

/// Computes a stratification, or reports cyclic negation/aggregation.
pub fn stratify(program: &Program, symbols: &SymbolTable) -> Result<Stratification, StratifyError> {
    let idb: Vec<Sym> = program.idb_predicates();
    let mut stratum: FxHashMap<Sym, usize> = idb.iter().map(|&p| (p, 0usize)).collect();
    let limit = idb.len() + 1;

    let mut changed = true;
    while changed {
        changed = false;
        for rule in &program.rules {
            let head = rule.head.pred;
            let head_stratum = *stratum.get(&head).unwrap_or(&0);
            let mut required = head_stratum;
            // Aggregate rules must see their (positive) body predicates
            // complete: treat every body edge as a negative edge.
            let aggregated = rule.aggregate.is_some();
            for item in &rule.body {
                match item {
                    BodyItem::Pos(a) => {
                        if let Some(&s) = stratum.get(&a.pred) {
                            let need = if aggregated { s + 1 } else { s };
                            required = required.max(need);
                        }
                    }
                    BodyItem::Neg(a) => {
                        if let Some(&s) = stratum.get(&a.pred) {
                            required = required.max(s + 1);
                        }
                    }
                    _ => {}
                }
            }
            if required > head_stratum {
                if required >= limit {
                    return Err(StratifyError(format!(
                        "predicate {} participates in a cycle through negation or aggregation",
                        symbols.resolve(head)
                    )));
                }
                stratum.insert(head, required);
                changed = true;
            }
        }
    }

    let max_stratum = stratum.values().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (i, rule) in program.rules.iter().enumerate() {
        strata[stratum[&rule.head.pred]].push(i);
    }
    let rule_reads = program.rules.iter().map(|r| r.read_preds()).collect();
    let rule_writes = program.rules.iter().map(|r| r.write_pred()).collect();
    Ok(Stratification {
        strata,
        pred_stratum: stratum,
        rule_reads,
        rule_writes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleBuilder;
    use crate::symbols::SymbolTable;

    /// Builds `head(X) :- pos..., not neg...` over unary predicates.
    fn rule(symbols: &SymbolTable, head: &str, pos: &[&str], neg: &[&str]) -> crate::rule::Rule {
        let mut b = RuleBuilder::new();
        let hx = b.v("X");
        b.head(symbols.intern(head), vec![hx]);
        for p in pos {
            let x = b.v("X");
            b.pos(symbols.intern(p), vec![x]);
        }
        for n in neg {
            let x = b.v("X");
            b.neg(symbols.intern(n), vec![x]);
        }
        b.build()
    }

    #[test]
    fn positive_recursion_is_one_stratum() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        prog.rules.push(rule(&t, "tc", &["edge"], &[]));
        prog.rules.push(rule(&t, "tc", &["edge", "tc"], &[]));
        let s = stratify(&prog, &t).unwrap();
        assert_eq!(s.strata.len(), 1);
        assert_eq!(s.strata[0], vec![0, 1]);
    }

    #[test]
    fn negation_pushes_to_later_stratum() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        prog.rules.push(rule(&t, "p", &["base"], &[]));
        prog.rules.push(rule(&t, "q", &["base"], &["p"]));
        prog.rules.push(rule(&t, "r", &["q"], &[]));
        let s = stratify(&prog, &t).unwrap();
        assert_eq!(s.pred_stratum[&t.intern("p")], 0);
        assert_eq!(s.pred_stratum[&t.intern("q")], 1);
        assert_eq!(s.pred_stratum[&t.intern("r")], 1);
        assert_eq!(s.strata.len(), 2);
    }

    #[test]
    fn cyclic_negation_is_rejected() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        prog.rules.push(rule(&t, "p", &[], &["q"]));
        prog.rules.push(rule(&t, "q", &[], &["p"]));
        let err = stratify(&prog, &t).unwrap_err();
        assert!(err.0.contains("cycle"));
    }

    #[test]
    fn self_negation_is_rejected() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        prog.rules.push(rule(&t, "p", &["base"], &["p"]));
        assert!(stratify(&prog, &t).is_err());
    }

    #[test]
    fn negation_through_positive_chain_is_layered() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        prog.rules.push(rule(&t, "a", &["edb"], &[]));
        prog.rules.push(rule(&t, "b", &["a"], &[]));
        prog.rules.push(rule(&t, "c", &["edb"], &["b"]));
        prog.rules.push(rule(&t, "d", &["c"], &["a"]));
        let s = stratify(&prog, &t).unwrap();
        assert_eq!(s.pred_stratum[&t.intern("a")], 0);
        assert_eq!(s.pred_stratum[&t.intern("b")], 0);
        assert_eq!(s.pred_stratum[&t.intern("c")], 1);
        assert_eq!(s.pred_stratum[&t.intern("d")], 1);
    }

    #[test]
    fn aggregate_rule_is_layered_like_negation() {
        use crate::rule::{AggFunc, AggSpec};
        let t = SymbolTable::new();
        let mut prog = Program::new();
        prog.rules.push(rule(&t, "p", &["edb"], &[]));
        // count(X) over p into cnt
        let mut b = RuleBuilder::new();
        let (hx, hc) = (b.v("X"), b.v("C"));
        b.head(t.intern("cnt"), vec![hx, hc]);
        let bx = b.v("X");
        b.pos(t.intern("p"), vec![bx]);
        let result_var = b.var("C");
        b.aggregate(AggSpec {
            func: AggFunc::Count,
            distinct: false,
            input: None,
            result_var,
        });
        prog.rules.push(b.build());
        let s = stratify(&prog, &t).unwrap();
        assert_eq!(s.pred_stratum[&t.intern("p")], 0);
        assert_eq!(s.pred_stratum[&t.intern("cnt")], 1);
    }

    #[test]
    fn read_write_sets_and_pass_independence() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        prog.rules.push(rule(&t, "tc", &["edge"], &[]));
        prog.rules.push(rule(&t, "tc", &["edge", "tc"], &[]));
        prog.rules.push(rule(&t, "q", &["tc"], &["tc"]));
        let s = stratify(&prog, &t).unwrap();
        assert_eq!(
            s.rule_writes,
            vec![t.intern("tc"), t.intern("tc"), t.intern("q")]
        );
        assert_eq!(s.rule_reads[1], vec![t.intern("edge"), t.intern("tc")]);
        assert_eq!(s.stratum_writes(&s.strata[0]), vec![t.intern("tc")]);
        // Every stratum the stratifier produces must satisfy the parallel
        // executor's independence invariant: negated reads never overlap
        // the stratum's writes.
        for st in &s.strata {
            assert!(s.pass_is_independent(st, &prog));
        }
        // A hand-built (invalid) stratum mixing rule 2 with the tc rules
        // violates it: rule 2 negates tc, which the stratum writes.
        assert!(!s.pass_is_independent(&[0, 1, 2], &prog));
    }

    #[test]
    fn edb_only_program_is_single_stratum() {
        let t = SymbolTable::new();
        let mut prog = Program::new();
        prog.rules.push(rule(&t, "p", &["edb1", "edb2"], &[]));
        let s = stratify(&prog, &t).unwrap();
        assert_eq!(s.strata.len(), 1);
    }
}
