//! Expressions evaluated inside rule bodies: filter conditions and
//! assignments.
//!
//! The paper's translation "literally copies (possibly complex) filter
//! conditions into the rule body and lets the Vadalog system evaluate
//! them" (§5.1). This module is that Vadalog evaluation layer: comparisons
//! with numeric coercion, arithmetic, the SPARQL test functions
//! (`isIRI`, `isBlank`, ...), string functions, `REGEX`, and the Skolem
//! constructor used for tuple IDs.
//!
//! Evaluation returns `Option<Const>`: `None` models a SPARQL expression
//! *error* (type error, unbound argument), which makes an enclosing filter
//! reject the binding — exactly the SPARQL behaviour.

use std::cmp::Ordering;

use crate::regex::Regex;
use crate::rule::VarId;
use crate::symbols::{Sym, SymbolTable};
use crate::value::{Const, OrdF64, TermDict, TermId};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` — equality (RDF term equality with numeric coercion).
    Eq,
    /// `!=` — inequality.
    Neq,
    /// `<` — less than.
    Lt,
    /// `<=` — less than or equal.
    Le,
    /// `>` — greater than.
    Gt,
    /// `>=` — greater than or equal.
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+` — addition.
    Add,
    /// `-` — subtraction.
    Sub,
    /// `*` — multiplication.
    Mul,
    /// `/` — division (an expression error on division by zero).
    Div,
}

/// A body expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Var(VarId),
    /// A literal constant.
    Const(Const),
    /// Skolem-term constructor: the tuple-ID generator of §5.1.
    Skolem(Sym, Vec<Expr>),
    /// A comparison between two subexpressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// An arithmetic combination of two subexpressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Boolean conjunction (`&&`).
    And(Box<Expr>, Box<Expr>),
    /// Boolean disjunction (`||`).
    Or(Box<Expr>, Box<Expr>),
    /// Boolean negation (`!`).
    Not(Box<Expr>),
    /// SPARQL `isIRI`/`isURI`.
    IsIri(Box<Expr>),
    /// SPARQL `isBlank` (true for blank nodes and labelled nulls).
    IsBlank(Box<Expr>),
    /// SPARQL `isLiteral`.
    IsLiteral(Box<Expr>),
    /// SPARQL `isNumeric`.
    IsNumeric(Box<Expr>),
    /// SPARQL `STR`: the lexical form of a term.
    Str(Box<Expr>),
    /// SPARQL `LANG`: a literal's language tag (`""` when absent).
    Lang(Box<Expr>),
    /// SPARQL `DATATYPE`: a literal's datatype IRI.
    Datatype(Box<Expr>),
    /// SPARQL `UCASE`.
    Ucase(Box<Expr>),
    /// SPARQL `LCASE`.
    Lcase(Box<Expr>),
    /// SPARQL `STRLEN` (in characters).
    Strlen(Box<Expr>),
    /// SPARQL `CONTAINS`.
    Contains(Box<Expr>, Box<Expr>),
    /// SPARQL `STRSTARTS`.
    StrStarts(Box<Expr>, Box<Expr>),
    /// SPARQL `STRENDS`.
    StrEnds(Box<Expr>, Box<Expr>),
    /// SPARQL `REGEX(text, pattern, flags?)`, evaluated by the in-tree
    /// backtracking matcher ([`crate::regex`]).
    Regex(Box<Expr>, Box<Expr>, Option<Box<Expr>>),
    /// SPARQL `sameTerm`: identity without numeric coercion.
    SameTerm(Box<Expr>, Box<Expr>),
    /// SPARQL `LANGMATCHES` (the `*` and prefix-range forms).
    LangMatches(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Collects the variables referenced by this expression.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Const(_) => {}
            Expr::Skolem(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::Cmp(_, a, b)
            | Expr::Arith(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Contains(a, b)
            | Expr::StrStarts(a, b)
            | Expr::StrEnds(a, b)
            | Expr::SameTerm(a, b)
            | Expr::LangMatches(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(e)
            | Expr::IsIri(e)
            | Expr::IsBlank(e)
            | Expr::IsLiteral(e)
            | Expr::IsNumeric(e)
            | Expr::Str(e)
            | Expr::Lang(e)
            | Expr::Datatype(e)
            | Expr::Ucase(e)
            | Expr::Lcase(e)
            | Expr::Strlen(e) => e.collect_vars(out),
            Expr::Regex(a, b, c) => {
                a.collect_vars(out);
                b.collect_vars(out);
                if let Some(c) = c {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// Evaluates the expression under `env` (indexed by [`VarId`]).
    /// `None` models a SPARQL expression error.
    pub fn eval(&self, env: &[Option<Const>], symbols: &SymbolTable) -> Option<Const> {
        self.eval_with(&|v| env.get(v as usize).cloned().flatten(), symbols)
    }

    /// Evaluates over an *encoded* environment, decoding lazily at the
    /// variable leaves — the filter/arithmetic boundary of the encoded
    /// pipeline. `TermId`s never flow through expression semantics.
    pub fn eval_decoded(
        &self,
        env: &[Option<TermId>],
        dict: &TermDict,
        symbols: &SymbolTable,
    ) -> Option<Const> {
        self.eval_with(
            &|v| {
                env.get(v as usize)
                    .copied()
                    .flatten()
                    .map(|id| dict.decode(id))
            },
            symbols,
        )
    }

    /// Evaluates over an encoded environment and re-encodes the result —
    /// the assignment (`Bind`) path. Skolem constructors (the tuple-ID
    /// generator of §5.1) stay entirely in id space: variable arguments
    /// pass through without a decode/encode round trip and the term is
    /// interned by identity.
    pub fn eval_id(
        &self,
        env: &[Option<TermId>],
        dict: &TermDict,
        symbols: &SymbolTable,
    ) -> Option<TermId> {
        match self {
            Expr::Var(v) => env.get(*v as usize).copied().flatten(),
            Expr::Const(c) => Some(dict.encode(c)),
            Expr::Skolem(f, args) => {
                let mut ids = Vec::with_capacity(args.len());
                for a in args {
                    ids.push(a.eval_id(env, dict, symbols)?);
                }
                Some(dict.skolem(*f, &ids))
            }
            other => other
                .eval_decoded(env, dict, symbols)
                .map(|c| dict.encode(&c)),
        }
    }

    /// Filter semantics over an encoded environment: `true` iff the
    /// expression evaluates without error to a value with effective
    /// boolean value `true`. Never encodes anything.
    pub fn eval_bool_ids(
        &self,
        env: &[Option<TermId>],
        dict: &TermDict,
        symbols: &SymbolTable,
    ) -> bool {
        self.eval_decoded(env, dict, symbols)
            .and_then(|v| ebv(&v, symbols))
            .unwrap_or(false)
    }

    /// Evaluates with an arbitrary variable resolver (the shared core of
    /// [`Expr::eval`] and [`Expr::eval_decoded`]).
    pub fn eval_with<F: Fn(VarId) -> Option<Const>>(
        &self,
        lookup: &F,
        symbols: &SymbolTable,
    ) -> Option<Const> {
        match self {
            Expr::Var(v) => lookup(*v),
            Expr::Const(c) => Some(c.clone()),
            Expr::Skolem(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval_with(lookup, symbols)?);
                }
                Some(Const::skolem(*f, vals))
            }
            Expr::Cmp(op, a, b) => {
                let a = a.eval_with(lookup, symbols)?;
                let b = b.eval_with(lookup, symbols)?;
                let r = match op {
                    CmpOp::Eq => value_eq(&a, &b, symbols),
                    CmpOp::Neq => !value_eq(&a, &b, symbols),
                    CmpOp::Lt => value_cmp(&a, &b, symbols)? == Ordering::Less,
                    CmpOp::Le => value_cmp(&a, &b, symbols)? != Ordering::Greater,
                    CmpOp::Gt => value_cmp(&a, &b, symbols)? == Ordering::Greater,
                    CmpOp::Ge => value_cmp(&a, &b, symbols)? != Ordering::Less,
                };
                Some(Const::Bool(r))
            }
            Expr::Arith(op, a, b) => {
                let a = a.eval_with(lookup, symbols)?;
                let b = b.eval_with(lookup, symbols)?;
                arith(*op, &a, &b, symbols)
            }
            Expr::And(a, b) => {
                // SPARQL three-valued logic: false && error = false.
                let av = a.eval_with(lookup, symbols).and_then(|v| ebv(&v, symbols));
                let bv = b.eval_with(lookup, symbols).and_then(|v| ebv(&v, symbols));
                match (av, bv) {
                    (Some(false), _) | (_, Some(false)) => Some(Const::Bool(false)),
                    (Some(true), Some(true)) => Some(Const::Bool(true)),
                    _ => None,
                }
            }
            Expr::Or(a, b) => {
                let av = a.eval_with(lookup, symbols).and_then(|v| ebv(&v, symbols));
                let bv = b.eval_with(lookup, symbols).and_then(|v| ebv(&v, symbols));
                match (av, bv) {
                    (Some(true), _) | (_, Some(true)) => Some(Const::Bool(true)),
                    (Some(false), Some(false)) => Some(Const::Bool(false)),
                    _ => None,
                }
            }
            Expr::Not(e) => {
                let v = e.eval_with(lookup, symbols)?;
                Some(Const::Bool(!ebv(&v, symbols)?))
            }
            Expr::IsIri(e) => {
                let v = e.eval_with(lookup, symbols)?;
                Some(Const::Bool(matches!(v, Const::Iri(_))))
            }
            Expr::IsBlank(e) => {
                let v = e.eval_with(lookup, symbols)?;
                Some(Const::Bool(matches!(v, Const::Bnode(_))))
            }
            Expr::IsLiteral(e) => {
                let v = e.eval_with(lookup, symbols)?;
                Some(Const::Bool(matches!(
                    v,
                    Const::Str(_)
                        | Const::LangStr(_, _)
                        | Const::Typed(_, _)
                        | Const::Int(_)
                        | Const::Float(_)
                        | Const::Bool(_)
                )))
            }
            Expr::IsNumeric(e) => {
                let v = e.eval_with(lookup, symbols)?;
                Some(Const::Bool(v.as_f64(symbols).is_some()))
            }
            Expr::Str(e) => {
                let v = e.eval_with(lookup, symbols)?;
                let s = match &v {
                    Const::Iri(s) | Const::Bnode(s) | Const::Str(s) => {
                        symbols.resolve(*s).to_string()
                    }
                    Const::LangStr(lex, _) | Const::Typed(lex, _) => {
                        symbols.resolve(*lex).to_string()
                    }
                    Const::Int(i) => i.to_string(),
                    Const::Float(f) => f.0.to_string(),
                    Const::Bool(b) => b.to_string(),
                    Const::Null | Const::Skolem(_) => return None,
                };
                Some(Const::Str(symbols.intern(&s)))
            }
            Expr::Lang(e) => {
                let v = e.eval_with(lookup, symbols)?;
                match v {
                    Const::LangStr(_, lang) => Some(Const::Str(lang)),
                    Const::Str(_)
                    | Const::Typed(_, _)
                    | Const::Int(_)
                    | Const::Float(_)
                    | Const::Bool(_) => Some(Const::Str(symbols.intern(""))),
                    _ => None,
                }
            }
            Expr::Datatype(e) => {
                let v = e.eval_with(lookup, symbols)?;
                let dt = match v {
                    Const::Typed(_, dt) => return Some(Const::Iri(dt)),
                    Const::Str(_) => "http://www.w3.org/2001/XMLSchema#string",
                    Const::LangStr(_, _) => "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString",
                    Const::Int(_) => "http://www.w3.org/2001/XMLSchema#integer",
                    Const::Float(_) => "http://www.w3.org/2001/XMLSchema#double",
                    Const::Bool(_) => "http://www.w3.org/2001/XMLSchema#boolean",
                    _ => return None,
                };
                Some(Const::Iri(symbols.intern(dt)))
            }
            Expr::Ucase(e) => map_string(e, lookup, symbols, |s| s.to_uppercase()),
            Expr::Lcase(e) => map_string(e, lookup, symbols, |s| s.to_lowercase()),
            Expr::Strlen(e) => {
                let v = e.eval_with(lookup, symbols)?;
                let (s, _) = string_value(&v, symbols)?;
                Some(Const::Int(s.chars().count() as i64))
            }
            Expr::Contains(a, b) => binary_string(a, b, lookup, symbols, |x, y| x.contains(y)),
            Expr::StrStarts(a, b) => binary_string(a, b, lookup, symbols, |x, y| x.starts_with(y)),
            Expr::StrEnds(a, b) => binary_string(a, b, lookup, symbols, |x, y| x.ends_with(y)),
            Expr::Regex(text, pattern, flags) => {
                let t = text.eval_with(lookup, symbols)?;
                let (t, _) = string_value(&t, symbols)?;
                let p = pattern.eval_with(lookup, symbols)?;
                let (p, _) = string_value(&p, symbols)?;
                let f = match flags {
                    None => String::new(),
                    Some(fe) => {
                        let fv = fe.eval_with(lookup, symbols)?;
                        string_value(&fv, symbols)?.0
                    }
                };
                let re = Regex::new(&p, &f).ok()?;
                Some(Const::Bool(re.is_match(&t)))
            }
            Expr::SameTerm(a, b) => {
                let a = a.eval_with(lookup, symbols)?;
                let b = b.eval_with(lookup, symbols)?;
                Some(Const::Bool(a == b))
            }
            Expr::LangMatches(lang, range) => {
                let l = lang.eval_with(lookup, symbols)?;
                let (l, _) = string_value(&l, symbols)?;
                let r = range.eval_with(lookup, symbols)?;
                let (r, _) = string_value(&r, symbols)?;
                let ok = if r == "*" {
                    !l.is_empty()
                } else {
                    let l = l.to_ascii_lowercase();
                    let r = r.to_ascii_lowercase();
                    l == r || l.starts_with(&format!("{r}-"))
                };
                Some(Const::Bool(ok))
            }
        }
    }

    /// Evaluates as a filter: `true` iff the expression evaluates without
    /// error to a value with effective boolean value `true`.
    pub fn eval_bool(&self, env: &[Option<Const>], symbols: &SymbolTable) -> bool {
        self.eval(env, symbols)
            .and_then(|v| ebv(&v, symbols))
            .unwrap_or(false)
    }

    /// Debug rendering.
    pub fn display(&self, var_names: &[String], symbols: &SymbolTable) -> String {
        let name = |v: &VarId| {
            var_names
                .get(*v as usize)
                .cloned()
                .unwrap_or_else(|| format!("V{v}"))
        };
        match self {
            Expr::Var(v) => name(v),
            Expr::Const(c) => c.display(symbols),
            Expr::Skolem(f, args) => {
                let a: Vec<String> = args.iter().map(|e| e.display(var_names, symbols)).collect();
                format!("[{}|{}]", symbols.resolve(*f), a.join(","))
            }
            Expr::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Neq => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                format!(
                    "{} {} {}",
                    a.display(var_names, symbols),
                    sym,
                    b.display(var_names, symbols)
                )
            }
            Expr::Arith(op, a, b) => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                format!(
                    "({} {} {})",
                    a.display(var_names, symbols),
                    sym,
                    b.display(var_names, symbols)
                )
            }
            Expr::And(a, b) => format!(
                "({} && {})",
                a.display(var_names, symbols),
                b.display(var_names, symbols)
            ),
            Expr::Or(a, b) => format!(
                "({} || {})",
                a.display(var_names, symbols),
                b.display(var_names, symbols)
            ),
            Expr::Not(e) => format!("!({})", e.display(var_names, symbols)),
            other => format!("{other:?}"),
        }
    }
}

/// Effective boolean value (SPARQL §17.2.2).
pub fn ebv(c: &Const, symbols: &SymbolTable) -> Option<bool> {
    match c {
        Const::Bool(b) => Some(*b),
        Const::Int(i) => Some(*i != 0),
        Const::Float(f) => Some(f.0 != 0.0 && !f.0.is_nan()),
        Const::Str(s) => Some(!symbols.resolve(*s).is_empty()),
        Const::LangStr(lex, _) => Some(!symbols.resolve(*lex).is_empty()),
        Const::Typed(lex, _) => {
            if let Some(n) = c.as_f64(symbols) {
                Some(n != 0.0 && !n.is_nan())
            } else {
                let s = symbols.resolve(*lex);
                match s.as_ref() {
                    "true" => Some(true),
                    "false" => Some(false),
                    _ => Some(!s.is_empty()),
                }
            }
        }
        Const::Iri(_) | Const::Bnode(_) | Const::Null | Const::Skolem(_) => None,
    }
}

/// Datalog/SPARQL value equality: numeric coercion between numeric values,
/// structural equality otherwise (`null = null` is true — Datalog equality,
/// which is what the translation's MINUS rules rely on).
pub fn value_eq(a: &Const, b: &Const, symbols: &SymbolTable) -> bool {
    if a == b {
        return true;
    }
    match (a.as_f64(symbols), b.as_f64(symbols)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Value ordering for `<`/`>` comparisons: numeric if both numeric, string
/// if both string-valued, boolean, IRIs by string. `None` = incomparable
/// (SPARQL type error).
pub fn value_cmp(a: &Const, b: &Const, symbols: &SymbolTable) -> Option<Ordering> {
    if let (Some(x), Some(y)) = (a.as_f64(symbols), b.as_f64(symbols)) {
        return x.partial_cmp(&y);
    }
    match (a, b) {
        (Const::Bool(x), Const::Bool(y)) => Some(x.cmp(y)),
        (Const::Iri(x), Const::Iri(y)) => Some(symbols.resolve(*x).cmp(&symbols.resolve(*y))),
        _ => {
            let (sa, _) = string_value(a, symbols)?;
            let (sb, _) = string_value(b, symbols)?;
            Some(sa.cmp(&sb))
        }
    }
}

/// The string value of a literal-ish constant, plus its language tag.
fn string_value(c: &Const, symbols: &SymbolTable) -> Option<(String, Option<String>)> {
    match c {
        Const::Str(s) => Some((symbols.resolve(*s).to_string(), None)),
        Const::LangStr(lex, lang) => Some((
            symbols.resolve(*lex).to_string(),
            Some(symbols.resolve(*lang).to_string()),
        )),
        Const::Typed(lex, _) => Some((symbols.resolve(*lex).to_string(), None)),
        Const::Int(i) => Some((i.to_string(), None)),
        Const::Float(f) => Some((f.0.to_string(), None)),
        Const::Bool(b) => Some((b.to_string(), None)),
        _ => None,
    }
}

fn map_string<F: Fn(VarId) -> Option<Const>>(
    e: &Expr,
    lookup: &F,
    symbols: &SymbolTable,
    f: impl Fn(&str) -> String,
) -> Option<Const> {
    let v = e.eval_with(lookup, symbols)?;
    match v {
        Const::LangStr(lex, lang) => {
            let mapped = f(&symbols.resolve(lex));
            Some(Const::LangStr(symbols.intern(&mapped), lang))
        }
        other => {
            let (s, _) = string_value(&other, symbols)?;
            Some(Const::Str(symbols.intern(&f(&s))))
        }
    }
}

fn binary_string<F: Fn(VarId) -> Option<Const>>(
    a: &Expr,
    b: &Expr,
    lookup: &F,
    symbols: &SymbolTable,
    f: impl Fn(&str, &str) -> bool,
) -> Option<Const> {
    let av = a.eval_with(lookup, symbols)?;
    let bv = b.eval_with(lookup, symbols)?;
    let (x, _) = string_value(&av, symbols)?;
    let (y, _) = string_value(&bv, symbols)?;
    Some(Const::Bool(f(&x, &y)))
}

fn arith(op: ArithOp, a: &Const, b: &Const, symbols: &SymbolTable) -> Option<Const> {
    let (ia, ib) = (a.as_i64(symbols), b.as_i64(symbols));
    if let (Some(x), Some(y)) = (ia, ib) {
        return match op {
            ArithOp::Add => Some(Const::Int(x.checked_add(y)?)),
            ArithOp::Sub => Some(Const::Int(x.checked_sub(y)?)),
            ArithOp::Mul => Some(Const::Int(x.checked_mul(y)?)),
            ArithOp::Div => {
                if y == 0 {
                    None
                } else if x % y == 0 {
                    Some(Const::Int(x / y))
                } else {
                    Some(Const::Float(OrdF64(x as f64 / y as f64)))
                }
            }
        };
    }
    let x = a.as_f64(symbols)?;
    let y = b.as_f64(symbols)?;
    let r = match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => {
            if y == 0.0 {
                return None;
            }
            x / y
        }
    };
    Some(Const::Float(OrdF64(r)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> std::sync::Arc<SymbolTable> {
        SymbolTable::new()
    }

    fn ev(e: &Expr, env: &[Option<Const>], t: &SymbolTable) -> Option<Const> {
        e.eval(env, t)
    }

    #[test]
    fn numeric_comparison_with_coercion() {
        let t = table();
        let lex = t.intern("5");
        let dt = t.intern("http://www.w3.org/2001/XMLSchema#integer");
        let typed_five = Const::Typed(lex, dt);
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Const(typed_five)),
            Box::new(Expr::Const(Const::Int(5))),
        );
        assert_eq!(ev(&e, &[], &t), Some(Const::Bool(true)));
        let lt = Expr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::Const(Const::Int(2))),
            Box::new(Expr::Const(Const::Int(10))),
        );
        assert_eq!(ev(&lt, &[], &t), Some(Const::Bool(true)));
    }

    #[test]
    fn string_comparison() {
        let t = table();
        let a = Const::Str(t.intern("apple"));
        let b = Const::Str(t.intern("banana"));
        let e = Expr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::Const(a)),
            Box::new(Expr::Const(b)),
        );
        assert_eq!(ev(&e, &[], &t), Some(Const::Bool(true)));
    }

    #[test]
    fn null_equality_is_datalog_style() {
        let t = table();
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Const(Const::Null)),
            Box::new(Expr::Const(Const::Null)),
        );
        assert_eq!(ev(&e, &[], &t), Some(Const::Bool(true)));
        let e2 = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Const(Const::Null)),
            Box::new(Expr::Const(Const::Int(1))),
        );
        assert_eq!(ev(&e2, &[], &t), Some(Const::Bool(false)));
    }

    #[test]
    fn three_valued_logic() {
        let t = table();
        let err = Expr::Strlen(Box::new(Expr::Const(Const::Null))); // error
        let fls = Expr::Const(Const::Bool(false));
        let tru = Expr::Const(Const::Bool(true));
        // false && error = false
        let e = Expr::And(Box::new(fls.clone()), Box::new(err.clone()));
        assert_eq!(ev(&e, &[], &t), Some(Const::Bool(false)));
        // true && error = error
        let e = Expr::And(Box::new(tru.clone()), Box::new(err.clone()));
        assert_eq!(ev(&e, &[], &t), None);
        // true || error = true
        let e = Expr::Or(Box::new(tru), Box::new(err.clone()));
        assert_eq!(ev(&e, &[], &t), Some(Const::Bool(true)));
        // false || error = error
        let e = Expr::Or(Box::new(fls), Box::new(err));
        assert_eq!(ev(&e, &[], &t), None);
    }

    #[test]
    fn eval_bool_treats_error_as_false() {
        let t = table();
        let err = Expr::Strlen(Box::new(Expr::Const(Const::Null)));
        assert!(!err.eval_bool(&[], &t));
        let tru = Expr::Const(Const::Bool(true));
        assert!(tru.eval_bool(&[], &t));
    }

    #[test]
    fn type_tests() {
        let t = table();
        let iri = Const::Iri(t.intern("http://a"));
        let bn = Const::Bnode(t.intern("b"));
        let lit = Const::Str(t.intern("x"));
        for (e, v, want) in [
            (Expr::IsIri(Box::new(Expr::Const(iri.clone()))), &iri, true),
            (Expr::IsBlank(Box::new(Expr::Const(bn.clone()))), &bn, true),
            (
                Expr::IsLiteral(Box::new(Expr::Const(lit.clone()))),
                &lit,
                true,
            ),
            (Expr::IsIri(Box::new(Expr::Const(lit.clone()))), &lit, false),
            (
                Expr::IsNumeric(Box::new(Expr::Const(Const::Int(1)))),
                &lit,
                true,
            ),
            (
                Expr::IsNumeric(Box::new(Expr::Const(lit.clone()))),
                &lit,
                false,
            ),
        ] {
            assert_eq!(ev(&e, &[], &t), Some(Const::Bool(want)), "{e:?} on {v:?}");
        }
    }

    #[test]
    fn string_functions() {
        let t = table();
        let s = Expr::Const(Const::Str(t.intern("Hello")));
        assert_eq!(
            ev(&Expr::Ucase(Box::new(s.clone())), &[], &t),
            Some(Const::Str(t.intern("HELLO")))
        );
        assert_eq!(
            ev(&Expr::Lcase(Box::new(s.clone())), &[], &t),
            Some(Const::Str(t.intern("hello")))
        );
        assert_eq!(
            ev(&Expr::Strlen(Box::new(s.clone())), &[], &t),
            Some(Const::Int(5))
        );
        let needle = Expr::Const(Const::Str(t.intern("ell")));
        assert_eq!(
            ev(
                &Expr::Contains(Box::new(s.clone()), Box::new(needle)),
                &[],
                &t
            ),
            Some(Const::Bool(true))
        );
        let h = Expr::Const(Const::Str(t.intern("He")));
        assert_eq!(
            ev(&Expr::StrStarts(Box::new(s.clone()), Box::new(h)), &[], &t),
            Some(Const::Bool(true))
        );
        let tail = Expr::Const(Const::Str(t.intern("lo")));
        assert_eq!(
            ev(&Expr::StrEnds(Box::new(s), Box::new(tail)), &[], &t),
            Some(Const::Bool(true))
        );
    }

    #[test]
    fn ucase_preserves_language_tag() {
        let t = table();
        let ls = Const::LangStr(t.intern("chat"), t.intern("fr"));
        let e = Expr::Ucase(Box::new(Expr::Const(ls)));
        assert_eq!(
            ev(&e, &[], &t),
            Some(Const::LangStr(t.intern("CHAT"), t.intern("fr")))
        );
    }

    #[test]
    fn str_lang_datatype() {
        let t = table();
        let iri = Const::Iri(t.intern("http://a"));
        assert_eq!(
            ev(&Expr::Str(Box::new(Expr::Const(iri))), &[], &t),
            Some(Const::Str(t.intern("http://a")))
        );
        let ls = Const::LangStr(t.intern("chat"), t.intern("fr"));
        assert_eq!(
            ev(&Expr::Lang(Box::new(Expr::Const(ls.clone()))), &[], &t),
            Some(Const::Str(t.intern("fr")))
        );
        assert_eq!(
            ev(&Expr::Datatype(Box::new(Expr::Const(ls))), &[], &t),
            Some(Const::Iri(t.intern(
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"
            )))
        );
        assert_eq!(
            ev(
                &Expr::Datatype(Box::new(Expr::Const(Const::Int(1)))),
                &[],
                &t
            ),
            Some(Const::Iri(
                t.intern("http://www.w3.org/2001/XMLSchema#integer")
            ))
        );
    }

    #[test]
    fn regex_builtin() {
        let t = table();
        let text = Expr::Const(Const::Str(t.intern("Journal of Testing")));
        let pat = Expr::Const(Const::Str(t.intern("^journal")));
        let flags = Expr::Const(Const::Str(t.intern("i")));
        let e = Expr::Regex(
            Box::new(text.clone()),
            Box::new(pat.clone()),
            Some(Box::new(flags)),
        );
        assert_eq!(ev(&e, &[], &t), Some(Const::Bool(true)));
        let e2 = Expr::Regex(Box::new(text), Box::new(pat), None);
        assert_eq!(ev(&e2, &[], &t), Some(Const::Bool(false)));
    }

    #[test]
    fn arithmetic() {
        let t = table();
        let add = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::Const(Const::Int(2))),
            Box::new(Expr::Const(Const::Int(3))),
        );
        assert_eq!(ev(&add, &[], &t), Some(Const::Int(5)));
        let div = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Const(Const::Int(7))),
            Box::new(Expr::Const(Const::Int(2))),
        );
        assert_eq!(ev(&div, &[], &t), Some(Const::Float(OrdF64(3.5))));
        let div0 = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Const(Const::Int(1))),
            Box::new(Expr::Const(Const::Int(0))),
        );
        assert_eq!(ev(&div0, &[], &t), None);
        let mixed = Expr::Arith(
            ArithOp::Mul,
            Box::new(Expr::Const(Const::Float(OrdF64(1.5)))),
            Box::new(Expr::Const(Const::Int(4))),
        );
        assert_eq!(ev(&mixed, &[], &t), Some(Const::Float(OrdF64(6.0))));
    }

    #[test]
    fn skolem_constructor() {
        let t = table();
        let f = t.intern("f1");
        let e = Expr::Skolem(f, vec![Expr::Var(0), Expr::Const(Const::Int(2))]);
        let env = vec![Some(Const::Int(1))];
        let v = ev(&e, &env, &t).unwrap();
        assert_eq!(v, Const::skolem(f, vec![Const::Int(1), Const::Int(2)]));
        // Same env → same Skolem term (determinism is what makes the
        // set-semantics fixpoint converge).
        assert_eq!(ev(&e, &env, &t).unwrap(), v);
    }

    #[test]
    fn lang_matches() {
        let t = table();
        let mk = |l: &str, r: &str| {
            Expr::LangMatches(
                Box::new(Expr::Const(Const::Str(t.intern(l)))),
                Box::new(Expr::Const(Const::Str(t.intern(r)))),
            )
        };
        assert_eq!(ev(&mk("en-US", "en"), &[], &t), Some(Const::Bool(true)));
        assert_eq!(ev(&mk("en", "en"), &[], &t), Some(Const::Bool(true)));
        assert_eq!(ev(&mk("fr", "en"), &[], &t), Some(Const::Bool(false)));
        assert_eq!(ev(&mk("fr", "*"), &[], &t), Some(Const::Bool(true)));
        assert_eq!(ev(&mk("", "*"), &[], &t), Some(Const::Bool(false)));
    }

    #[test]
    fn unbound_var_is_error() {
        let t = table();
        let e = Expr::Var(0);
        assert_eq!(ev(&e, &[None], &t), None);
        assert_eq!(ev(&e, &[], &t), None);
    }

    #[test]
    fn collect_vars() {
        let e = Expr::And(
            Box::new(Expr::Cmp(
                CmpOp::Eq,
                Box::new(Expr::Var(1)),
                Box::new(Expr::Var(0)),
            )),
            Box::new(Expr::Not(Box::new(Expr::Var(1)))),
        );
        let mut vs = Vec::new();
        e.collect_vars(&mut vs);
        assert_eq!(vs, vec![1, 0]);
    }
}
