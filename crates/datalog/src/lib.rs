//! A Warded Datalog± engine — the workspace's substitute for the Vadalog
//! system (Bellomarini–Sallinger–Gottlob, PVLDB 2018) that the SparqLog
//! paper builds on.
//!
//! Features, matching what the paper's translation needs (§3.2, §5):
//!
//! * **Full recursion** with stratified negation, evaluated bottom-up by a
//!   semi-naive fixpoint with index-nested-loop joins ([`eval`]).
//! * **Existential rules**: head variables not bound in the body are
//!   Skolemised deterministically over the rule frontier, producing
//!   labelled nulls ([`value::Const::Skolem`]). A configurable
//!   Skolem-depth bound substitutes for Vadalog's warded-chase
//!   termination.
//! * **Skolem tuple IDs** for bag semantics: assignments of the form
//!   `Id = ["f2", X, ...]` ([`expr::Expr::Skolem`]), the paper's duplicate
//!   preservation model.
//! * **Filter builtins**: comparisons with numeric coercion, arithmetic,
//!   the SPARQL test/string functions, and `REGEX` via an in-tree
//!   backtracking matcher ([`regex`]).
//! * **Aggregation**: `COUNT`/`SUM`/`MIN`/`MAX`/`AVG` rules, evaluated as
//!   a separate stratum (Vadalog-style).
//! * **`@output` / `@post` directives**: `orderby`, `limit`, `offset`
//!   post-processing ([`eval::collect_output`]).
//! * A **wardedness analyser** ([`wardedness`]) used by tests to verify
//!   that the SPARQL translation produces warded programs, as the paper
//!   claims.
//! * A small **textual Datalog parser** ([`parser`]) for tests, examples
//!   and debugging.
//!
//! # Example
//!
//! ```
//! use sparqlog_datalog::{parser::parse_program, Database, EvalOptions};
//!
//! let mut db = Database::new();
//! let prog = parse_program(
//!     r#"
//!     edge("a", "b"). edge("b", "c"). edge("c", "d").
//!     tc(X, Y) :- edge(X, Y).
//!     tc(X, Z) :- edge(X, Y), tc(Y, Z).
//!     @output("tc").
//!     "#,
//!     db.symbols(),
//! )
//! .unwrap();
//! let stats = sparqlog_datalog::evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
//! assert_eq!(stats.derived, 3 + 6); // 3 facts + 6 closure tuples
//! ```

#![warn(missing_docs)]

pub mod database;
pub mod delta;
pub mod eval;
pub mod expr;
pub mod frozen;
pub mod fxhash;
pub mod govern;
pub mod magic;
pub mod parser;
pub mod plan;
pub mod pool;
pub mod profile;
pub mod regex;
pub mod rule;
pub mod stats;
pub mod stratify;
pub mod symbols;
pub mod value;
pub mod wardedness;

pub use database::{row_hash, ColumnBatch, Database, Mask, Matches, Relation, Staging};
pub use delta::{retract, stage_deletion, MaintainError, Retraction};
pub use eval::{
    collect_output, evaluate, evaluate_frozen, evaluate_frozen_with_plan, evaluate_with_plan,
    order_cmp, EvalError, EvalOptions, EvalStats, PLAN_MIN_ROWS,
};
pub use expr::{ArithOp, CmpOp, Expr};
pub use frozen::{FrozenDb, FULL_INDEX_MAX_ARITY};
pub use govern::{AbortReason, Budget, CancelToken};
pub use magic::{
    demand_prunes, demand_subprogram, magic_sets_rewrite, magic_sets_rewrite_analyzed,
    MagicRewrite, DEMAND_SELECTIVITY,
};
pub use plan::{plan_program, AtomPlan, ProgramPlan, RuleOrder};
pub use pool::{run_scoped, run_scoped_caught, JobPanic};
pub use profile::{QueryProfile, RoundProfile, RuleProfile, StratumProfile};
pub use rule::{
    AggFunc, AggSpec, Atom, AtomArg, BodyItem, PostOp, Program, Rule, RuleBuilder, VarId,
};
pub use stats::{DbStats, RelStats, StatsFingerprint};
pub use stratify::{stratify, Stratification, StratifyError};
pub use symbols::{Sym, SymbolTable};
pub use value::{Const, OrdF64, SkolemTerm, TermDict, TermId};
pub use wardedness::{check_wardedness, WardednessReport};
