//! The execution governor: cooperative budgets and cancellation for the
//! evaluator (PR 7).
//!
//! A [`Budget`] bundles every way an evaluation may be bounded — a
//! wall-clock deadline, a derived-row cap, a dictionary-growth cap, and an
//! external [`CancelToken`] — and travels inside
//! [`EvalOptions`](crate::EvalOptions). The fixpoint loop, the join
//! kernels, aggregate evaluation and the magic-sets demand fixpoint all
//! check it *cooperatively* at batch granularity (every few thousand join
//! ticks, every merge, every round), so a runaway query returns a
//! structured [`EvalError::Aborted`](crate::EvalError::Aborted) within one
//! batch of the limit instead of wedging a worker thread.
//!
//! Checks are designed to cost nothing when no limit is set: a single
//! `bool` test guards the whole governed path, and the row counter is
//! only maintained while a row cap is armed. The handle is `Send + Sync`
//! (plain atomics), so one token can cancel an evaluation running on any
//! number of pool workers — and a batch driver can chain per-job tokens
//! off one group token to cancel siblings on first failure.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an evaluation was aborted by the governor. Carried in
/// [`EvalError::Aborted`](crate::EvalError::Aborted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The budget's wall-clock deadline passed.
    Deadline,
    /// The budget's [`CancelToken`] (or one of its ancestors) was
    /// cancelled from outside.
    Cancelled,
    /// The derived-row cap was reached.
    RowLimit,
    /// The term-dictionary growth cap was reached (the engine's proxy for
    /// query-private memory: every fresh literal/Skolem a query interns
    /// stays resident in the shared dictionary).
    DictGrowth,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Deadline => write!(f, "deadline exceeded"),
            AbortReason::Cancelled => write!(f, "cancelled"),
            AbortReason::RowLimit => write!(f, "derived-row limit reached"),
            AbortReason::DictGrowth => write!(f, "dictionary-growth limit reached"),
        }
    }
}

#[derive(Debug, Default)]
struct CancelInner {
    flag: AtomicBool,
    /// Chained parent: cancelling a parent cancels every descendant. Used
    /// by the batch driver (one group token, per-job children) — chains
    /// are short (two or three links), so the walk in [`CancelToken::
    /// is_cancelled`] stays O(1) in practice.
    parent: Option<CancelToken>,
}

/// A shareable, chainable cancellation flag.
///
/// Cloning shares the flag; [`CancelToken::child`] creates a token that is
/// cancelled whenever its parent is (but can also be cancelled on its
/// own). `Send + Sync`; checking is a couple of relaxed atomic loads.
///
/// ```
/// use sparqlog_datalog::CancelToken;
///
/// let group = CancelToken::new();
/// let job = group.child();
/// assert!(!job.is_cancelled());
/// group.cancel();
/// assert!(job.is_cancelled()); // parent cancellation propagates
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the flag. Every evaluation carrying this token (or a
    /// descendant of it) observes the cancellation at its next governed
    /// check and aborts with [`AbortReason::Cancelled`].
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called on this token or
    /// any of its ancestors.
    pub fn is_cancelled(&self) -> bool {
        let mut cur = Some(self);
        while let Some(t) = cur {
            if t.inner.flag.load(Ordering::Acquire) {
                return true;
            }
            cur = t.inner.parent.as_ref();
        }
        false
    }

    /// A token linked under this one: cancelling `self` cancels the child
    /// (and all its siblings), while cancelling the child leaves `self`
    /// untouched.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }
}

/// Resource limits for one evaluation. The unlimited default costs the
/// evaluator a single branch per governed check.
///
/// A `Budget` is a *policy* value: it can be stored (e.g. as a store-wide
/// default) and reused across queries. The wall-clock `timeout` is
/// converted into an absolute deadline when an evaluation starts, so the
/// clock measures each query's own execution, not the policy's age. All
/// limits compose; the first one crossed aborts the evaluation.
///
/// ```
/// use std::time::Duration;
/// use sparqlog_datalog::{Budget, CancelToken};
///
/// let cancel = CancelToken::new();
/// let budget = Budget::new()
///     .with_timeout(Duration::from_millis(50))
///     .with_max_rows(100_000)
///     .with_cancel(cancel.clone());
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    timeout: Option<Duration>,
    /// Absolute deadline, fixed by [`Budget::armed`] when an evaluation
    /// starts (or set directly by a caller that owns the clock).
    deadline: Option<Instant>,
    max_rows: Option<usize>,
    max_dict_growth: Option<usize>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// An unlimited budget (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps wall-clock execution time. The clock starts when evaluation
    /// starts; crossing it aborts with [`AbortReason::Deadline`].
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets an absolute deadline instead of a relative timeout (for
    /// callers that account queueing time against the query).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps derived rows (staged derivation candidates, counted before
    /// set-level deduplication — the measure of work performed, and the
    /// engine's proxy for intermediate-result memory). Crossing it aborts
    /// with [`AbortReason::RowLimit`] within one batch of the cap.
    pub fn with_max_rows(mut self, max_rows: usize) -> Self {
        self.max_rows = Some(max_rows);
        self
    }

    /// Caps how many new terms the evaluation may intern into the shared
    /// term dictionary (fresh literals from arithmetic/string builtins,
    /// Skolem tuple IDs). Crossing it aborts with
    /// [`AbortReason::DictGrowth`].
    pub fn with_max_dict_growth(mut self, max_growth: usize) -> Self {
        self.max_dict_growth = Some(max_growth);
        self
    }

    /// Attaches an external cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// True when no limit of any kind is set — the governed paths reduce
    /// to a single branch.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.deadline.is_none()
            && self.max_rows.is_none()
            && self.max_dict_growth.is_none()
            && self.cancel.is_none()
    }

    /// The configured relative timeout, if any.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The absolute deadline, if armed or explicitly set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The derived-row cap, if any.
    pub fn max_rows(&self) -> Option<usize> {
        self.max_rows
    }

    /// The dictionary-growth cap, if any.
    pub fn max_dict_growth(&self) -> Option<usize> {
        self.max_dict_growth
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// True when [`Budget::armed`] would change the budget: a relative
    /// timeout is set but no absolute deadline has been fixed yet.
    pub(crate) fn needs_arming(&self) -> bool {
        self.timeout.is_some() && self.deadline.is_none()
    }

    /// Fixes the relative timeout into an absolute deadline as of now.
    /// Idempotent: an already-armed budget (e.g. the outer evaluation's,
    /// inherited by the magic-sets demand fixpoint) keeps its deadline, so
    /// nested evaluations share one clock.
    pub(crate) fn armed(&self) -> Budget {
        let mut b = self.clone();
        if b.deadline.is_none() {
            b.deadline = b.timeout.map(|t| Instant::now() + t);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_chains() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        let sibling = root.child();
        assert!(!grandchild.is_cancelled());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled(), "descendants observe the cancel");
        assert!(!root.is_cancelled(), "parents do not");
        assert!(!sibling.is_cancelled(), "siblings do not");
        root.cancel();
        assert!(sibling.is_cancelled());
    }

    #[test]
    fn budget_arming_is_idempotent() {
        let b = Budget::new().with_timeout(Duration::from_secs(3600));
        assert!(b.needs_arming());
        let armed = b.armed();
        assert!(!armed.needs_arming());
        let deadline = armed.deadline().unwrap();
        // Re-arming (the nested demand-fixpoint path) keeps the deadline.
        assert_eq!(armed.armed().deadline(), Some(deadline));
    }

    #[test]
    fn unlimited_budget_reports_unlimited() {
        assert!(Budget::new().is_unlimited());
        assert!(!Budget::new().with_max_rows(1).is_unlimited());
        assert!(!Budget::new().with_cancel(CancelToken::new()).is_unlimited());
    }
}
