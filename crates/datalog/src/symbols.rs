//! String interning for predicate names and string constants.
//!
//! Every string that enters the Datalog engine (predicate names, IRIs,
//! literals) is interned once into a [`SymbolTable`] and then handled as a
//! 4-byte [`Sym`]. Tuple hashing, joins and dedup all operate on integers.
//! The table is shared (`Arc`) between the translator, the database and the
//! evaluator, and guarded by an `RwLock` (reads vastly dominate).

use std::fmt;
use std::sync::{Arc, RwLock};

use crate::fxhash::FxHashMap;

/// An interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[derive(Default)]
struct Inner {
    strings: Vec<Arc<str>>,
    ids: FxHashMap<Arc<str>, u32>,
}

/// A thread-safe string interner.
#[derive(Default)]
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Arc<Self> {
        Arc::new(SymbolTable::default())
    }

    /// Interns `s`, returning its symbol.
    pub fn intern(&self, s: &str) -> Sym {
        if let Some(&id) = self.inner.read().unwrap().ids.get(s) {
            return Sym(id);
        }
        let mut w = self.inner.write().unwrap();
        if let Some(&id) = w.ids.get(s) {
            return Sym(id);
        }
        let id = w.strings.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        w.strings.push(arc.clone());
        w.ids.insert(arc, id);
        Sym(id)
    }

    /// The string behind a symbol. Panics on a symbol from another table.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        self.inner.read().unwrap().strings[sym.0 as usize].clone()
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.inner.read().unwrap().ids.get(s).map(|&id| Sym(id))
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let t = SymbolTable::new();
        let a = t.intern("hello");
        let b = t.intern("hello");
        assert_eq!(a, b);
        assert_eq!(t.resolve(a).as_ref(), "hello");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        let t = SymbolTable::new();
        assert_ne!(t.intern("a"), t.intern("b"));
        assert_eq!(t.get("a"), Some(t.intern("a")));
        assert_eq!(t.get("zzz"), None);
    }

    #[test]
    fn concurrent_interning() {
        let t = SymbolTable::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let mut syms = Vec::new();
                    for j in 0..100 {
                        syms.push(t.intern(&format!("s{}", (i * j) % 50)));
                    }
                    syms
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 50);
    }
}
