//! The evaluation engine: stratified, semi-naive, bottom-up fixpoint with
//! index-nested-loop joins.
//!
//! This is the workspace's stand-in for the Vadalog system's reasoner. Per
//! stratum the engine runs
//!
//! 1. a *naive* first pass of every rule over the current database, then
//! 2. *semi-naive* rounds: each rule with a body atom whose predicate
//!    belongs to the current stratum is re-evaluated once per such
//!    occurrence, with that occurrence restricted to the last round's
//!    delta. Deduplication against the full relation guarantees
//!    termination on the set level; bag semantics lives entirely in the
//!    Skolem tuple-ID argument, as in the paper (§5.1).
//!
//! The entire fixpoint runs on dictionary-encoded tuples: atom constants
//! are encoded once at plan-compile time, join keys and environments are
//! fixed-width [`TermId`]s, and dedup probes hash raw `u64` rows. The
//! inner join loop performs **no heap allocation** — index keys live in
//! stack buffers and tuples are borrowed slices of the relations' flat
//! storage. Constants are decoded only at the filter/arithmetic boundary
//! ([`crate::expr`]) and in [`collect_output`].
//!
//! Existential head variables are Skolemised deterministically over the
//! rule's frontier, so re-deriving the same frontier binding yields the
//! same labelled null — the "restricted chase" behaviour that makes
//! ontological rules converge. Skolem terms intern once in the term
//! dictionary and compare by id; their nesting depth is precomputed, so
//! the configurable Skolem-depth bound (the substitute for Vadalog's
//! warded-chase termination strategy) is an O(1) check.

use std::time::{Duration, Instant};

use crate::database::{Database, Mask};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::rule::{AggFunc, AtomArg, BodyItem, PostOp, Program, Rule, VarId};
use crate::stratify::{stratify, StratifyError};
use crate::symbols::{Sym, SymbolTable};
use crate::value::{Const, OrdF64, TermDict, TermId};

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Wall-clock budget; `None` = unlimited. The gMark experiments use
    /// this to reproduce the paper's time-outs.
    pub timeout: Option<Duration>,
    /// Maximum semi-naive rounds per stratum (a safety net; the default is
    /// effectively unlimited).
    pub max_rounds: usize,
    /// Skolem-nesting bound: head tuples containing deeper Skolem terms
    /// are not derived. Substitutes for Vadalog's chase-termination
    /// strategy on cyclic existential rules.
    pub max_skolem_depth: usize,
    /// Reorder rule bodies in semi-naive delta passes (delta atom first,
    /// then greedily by bound positions). On by default; the ablation
    /// bench (`cargo bench --bench ablation`) measures its effect.
    pub semi_naive_reorder: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            timeout: None,
            max_rounds: usize::MAX,
            max_skolem_depth: 64,
            semi_naive_reorder: true,
        }
    }
}

/// Statistics of one evaluation run.
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Total facts derived (after dedup).
    pub derived: usize,
    /// Semi-naive rounds across all strata.
    pub rounds: usize,
    /// Number of strata.
    pub strata: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The wall-clock budget was exceeded (the paper's "time-out" rows).
    Timeout,
    /// Cyclic negation/aggregation.
    Stratification(String),
    /// A rule is unsafe (unbound variable in a negated atom, condition or
    /// head at evaluation position).
    Unsafe(String),
    /// `max_rounds` exceeded.
    RoundLimit,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Timeout => write!(f, "evaluation timed out"),
            EvalError::Stratification(s) => write!(f, "{s}"),
            EvalError::Unsafe(s) => write!(f, "unsafe rule: {s}"),
            EvalError::RoundLimit => write!(f, "round limit exceeded"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<StratifyError> for EvalError {
    fn from(e: StratifyError) -> Self {
        EvalError::Stratification(e.0)
    }
}

/// Evaluates `program` against `db` to fixpoint, mutating `db` in place.
pub fn evaluate(
    program: &Program,
    db: &mut Database,
    options: &EvalOptions,
) -> Result<EvalStats, EvalError> {
    let start = Instant::now();
    let symbols = db.symbols().clone();
    let dict = db.dict().clone();

    // Load the program's bundled facts (the T_D encode boundary for
    // facts carried by the program itself).
    let mut derived = 0usize;
    let mut scratch: Vec<TermId> = Vec::new();
    for (pred, tuple) in &program.facts {
        scratch.clear();
        scratch.extend(tuple.iter().map(|c| dict.encode(c)));
        if db.add_fact_ids(*pred, &scratch) {
            derived += 1;
        }
    }

    let strat = stratify(program, &symbols)?;
    let plans: Vec<RulePlan> = program
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| compile_rule(i, r, &symbols, &dict, None))
        .collect::<Result<_, _>>()?;

    let ctx = Ctx {
        symbols: &symbols,
        dict: &dict,
        start,
        timeout: options.timeout,
        max_skolem_depth: options.max_skolem_depth,
    };
    // `SPARQLOG_TRACE=1` prints per-rule evaluation progress to stderr —
    // the engine's answer to Vadalog's provenance/debugging output
    // (Appendix C: "information for debugging/explanation purposes").
    let trace = std::env::var("SPARQLOG_TRACE").is_ok_and(|v| v == "1");

    let mut stats = EvalStats {
        derived,
        rounds: 0,
        strata: strat.strata.len(),
        elapsed: Duration::ZERO,
    };

    for stratum_rules in &strat.strata {
        // Predicates defined in this stratum (for semi-naive deltas).
        let stratum_preds: FxHashSet<Sym> = stratum_rules
            .iter()
            .map(|&i| program.rules[i].head.pred)
            .collect();

        // Delta-first plan variants for the semi-naive rounds: one per
        // body occurrence of a this-stratum predicate.
        let mut delta_plans: FxHashMap<(usize, usize), RulePlan> = FxHashMap::default();
        for &ri in stratum_rules {
            for (item_idx, item) in program.rules[ri].body.iter().enumerate() {
                if let BodyItem::Pos(a) = item {
                    if stratum_preds.contains(&a.pred) {
                        let delta_first =
                            options.semi_naive_reorder.then_some(item_idx);
                        delta_plans.insert(
                            (ri, item_idx),
                            compile_rule(
                                ri,
                                &program.rules[ri],
                                &symbols,
                                &dict,
                                delta_first,
                            )?,
                        );
                    }
                }
            }
        }

        // Make sure every index the plans need exists.
        for &ri in stratum_rules {
            for need in &plans[ri].index_needs {
                db.relation_mut(need.0).ensure_index(need.1);
            }
        }
        for plan in delta_plans.values() {
            for need in &plan.index_needs {
                db.relation_mut(need.0).ensure_index(need.1);
            }
        }

        // Aggregate rules run once, after the non-aggregate fixpoint.
        let (agg_rules, plain_rules): (Vec<usize>, Vec<usize>) = stratum_rules
            .iter()
            .partition(|&&i| program.rules[i].aggregate.is_some());

        // --- naive first pass ---
        // Derived tuples are inserted into the database as soon as a
        // rule's pass completes: the relation's own dedup doubles as the
        // delta filter (one hash probe per derivation instead of a
        // contains-check plus a side set plus a re-inserting commit).
        // Inserting mid-round only lets later passes of the same round
        // see *more* tuples, which a monotone fixpoint is insensitive to.
        let mut out = FlatTuples::default();
        let mut delta: FxHashMap<Sym, Vec<Vec<TermId>>> = FxHashMap::default();
        for &ri in &plain_rules {
            if trace {
                eprintln!("[eval] naive rule {ri}: {}", program.rules[ri].display(&symbols));
            }
            out.clear();
            eval_rule(&plans[ri], &program.rules[ri], db, None, &ctx, &mut out)?;
            if trace {
                eprintln!("[eval]   -> {} tuples ({:?})", out.count, start.elapsed());
            }
            let pred = program.rules[ri].head.pred;
            insert_emitted(db, pred, &out, &mut delta, &mut stats.derived);
        }

        // --- semi-naive rounds ---
        let mut rounds = 0usize;
        while delta.values().any(|v| !v.is_empty()) {
            rounds += 1;
            stats.rounds += 1;
            if rounds > options.max_rounds {
                return Err(EvalError::RoundLimit);
            }
            ctx.check_time()?;

            let mut next: FxHashMap<Sym, Vec<Vec<TermId>>> = FxHashMap::default();
            for &ri in &plain_rules {
                let rule = &program.rules[ri];
                // One variant per body occurrence of a this-stratum pred.
                for (item_idx, item) in rule.body.iter().enumerate() {
                    let atom_pred = match item {
                        BodyItem::Pos(a) if stratum_preds.contains(&a.pred) => a.pred,
                        _ => continue,
                    };
                    let Some(dt) = delta.get(&atom_pred) else { continue };
                    if dt.is_empty() {
                        continue;
                    }
                    let plan = &delta_plans[&(ri, item_idx)];
                    let rule_start = Instant::now();
                    out.clear();
                    eval_rule(plan, rule, db, Some((item_idx, dt)), &ctx, &mut out)?;
                    if trace {
                        eprintln!(
                            "[eval] round {rounds} rule {ri} delta-on-{item_idx}                              (|delta|={}) -> {} tuples in {:?}",
                            dt.len(),
                            out.count,
                            rule_start.elapsed()
                        );
                    }
                    insert_emitted(db, rule.head.pred, &out, &mut next, &mut stats.derived);
                }
            }
            delta = next;
        }

        // --- aggregates ---
        for &ri in &agg_rules {
            let rule = &program.rules[ri];
            let plan = &plans[ri];
            let mut matches = Vec::new();
            eval_rule_envs(plan, rule, db, &ctx, &mut matches)?;
            let tuples = aggregate(rule, matches, &ctx)?;
            for t in tuples {
                if db.add_fact_ids(rule.head.pred, &t) {
                    stats.derived += 1;
                }
            }
        }
    }

    stats.elapsed = start.elapsed();
    Ok(stats)
}

/// Emitted head tuples of one rule pass: a flat id buffer (one
/// allocation amortised across all emissions, not one `Vec` each) plus
/// the emission count — which also covers nullary heads.
#[derive(Default)]
struct FlatTuples {
    ids: Vec<TermId>,
    arity: usize,
    count: usize,
}

impl FlatTuples {
    fn clear(&mut self) {
        self.ids.clear();
        self.count = 0;
    }
}

/// Inserts a pass's emitted tuples; fresh ones are recorded in `delta`.
fn insert_emitted(
    db: &mut Database,
    pred: Sym,
    out: &FlatTuples,
    delta: &mut FxHashMap<Sym, Vec<Vec<TermId>>>,
    derived: &mut usize,
) {
    if out.count == 0 {
        return;
    }
    if out.arity == 0 {
        if db.add_fact_ids(pred, &[]) {
            *derived += 1;
            delta.entry(pred).or_default().push(Vec::new());
        }
        return;
    }
    for tuple in out.ids.chunks_exact(out.arity) {
        if db.add_fact_ids(pred, tuple) {
            *derived += 1;
            delta.entry(pred).or_default().push(tuple.to_vec());
        }
    }
}

/// Applies a predicate's `@post` directives and returns the final tuples,
/// decoded back to boundary constants (the T_S decode boundary: encoded
/// ids never escape the engine).
pub fn collect_output(
    program: &Program,
    db: &Database,
    pred: Sym,
) -> Vec<Vec<Const>> {
    let symbols = db.symbols();
    let mut tuples: Vec<Vec<Const>> = db
        .relation(pred)
        .map(|r| r.iter().map(|t| db.decode_tuple(t)).collect())
        .unwrap_or_default();
    for (p, op) in &program.post {
        if *p != pred {
            continue;
        }
        match op {
            PostOp::OrderBy(cols) => {
                tuples.sort_by(|a, b| {
                    for &(col, desc) in cols {
                        let (x, y) = (&a[col], &b[col]);
                        let ord = order_cmp(x, y, symbols);
                        let ord = if desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
            }
            PostOp::Offset(n) => {
                tuples = tuples.split_off((*n).min(tuples.len()));
            }
            PostOp::Limit(n) => {
                tuples.truncate(*n);
            }
        }
    }
    tuples
}

/// Total order used by `orderby`: nulls first, then blank nodes, IRIs,
/// then literals (numerics by value). Mirrors the SPARQL `ORDER BY` term
/// ordering closely; the paper itself delegates to "the sorting strategy
/// employed by the Vadalog system" (§4.3), which is what this is.
pub fn order_cmp(a: &Const, b: &Const, symbols: &SymbolTable) -> std::cmp::Ordering {
    fn rank(c: &Const) -> u8 {
        match c {
            Const::Null => 0,
            Const::Skolem(_) => 1,
            Const::Bnode(_) => 2,
            Const::Iri(_) => 3,
            _ => 4, // literals
        }
    }
    let (ra, rb) = (rank(a), rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Const::Iri(x), Const::Iri(y)) | (Const::Bnode(x), Const::Bnode(y)) => {
            symbols.resolve(*x).cmp(&symbols.resolve(*y))
        }
        _ => match crate::expr::value_cmp(a, b, symbols) {
            Some(o) => o,
            None => format!("{a:?}").cmp(&format!("{b:?}")),
        },
    }
}

// ------------------------------------------------------------------ plans

/// One compiled body step.
#[derive(Debug, Clone)]
enum Step {
    /// Scan/lookup a positive atom. `mask` = positions bound at this point
    /// (constants or already-bound variables).
    Scan { item_idx: usize, pred: Sym, mask: Mask },
    /// Check absence of a fully-bound negated atom.
    NegCheck { item_idx: usize, pred: Sym },
    /// Evaluate a filter condition.
    Filter { item_idx: usize },
    /// Evaluate an assignment.
    Bind { item_idx: usize, var: VarId },
}

/// A pre-encoded atom argument: constants encode to ids at plan-compile
/// time so the join loop compares raw `u64`s.
#[derive(Debug, Clone, Copy)]
enum EArg {
    Id(TermId),
    Var(VarId),
}

/// An atom with pre-encoded arguments, parallel to a body item (or the
/// head) of the source rule.
#[derive(Debug, Clone)]
struct EncAtom {
    args: Box<[EArg]>,
}

/// A compiled rule.
#[derive(Debug, Clone)]
struct RulePlan {
    steps: Vec<Step>,
    nvars: usize,
    /// Indexes the plan requires: `(pred, mask)` pairs.
    index_needs: Vec<(Sym, Mask)>,
    /// Existential head vars with their Skolem functor.
    existentials: Vec<(VarId, Sym)>,
    /// Encoded positive/negated atoms, indexed by body item.
    enc_atoms: Vec<Option<EncAtom>>,
    /// The encoded head.
    enc_head: EncAtom,
}

fn encode_atom(atom: &crate::rule::Atom, dict: &TermDict) -> EncAtom {
    EncAtom {
        args: atom
            .args
            .iter()
            .map(|arg| match arg {
                AtomArg::Const(c) => EArg::Id(dict.encode(c)),
                AtomArg::Var(v) => EArg::Var(*v),
            })
            .collect(),
    }
}

/// Compiles a rule into an evaluation plan. With `delta_first =
/// Some(i)`, body item `i` (a positive atom) is moved to the front —
/// the standard semi-naive ordering, so a delta pass costs
/// O(|delta| x join) instead of O(|full prefix| x |delta|). Moving a
/// positive atom earlier never breaks safety: it only binds variables
/// sooner.
fn compile_rule(
    rule_idx: usize,
    rule: &Rule,
    symbols: &SymbolTable,
    dict: &TermDict,
    delta_first: Option<usize>,
) -> Result<RulePlan, EvalError> {
    let nvars = rule.var_names.len();
    let mut bound = vec![false; nvars];
    let mut steps = Vec::new();
    let mut index_needs = Vec::new();
    let mut enc_atoms: Vec<Option<EncAtom>> = vec![None; rule.body.len()];

    let order: Vec<usize> = match delta_first {
        None => (0..rule.body.len()).collect(),
        Some(di) => delta_order(rule, di),
    };
    for item_idx in order {
        let item = &rule.body[item_idx];
        match item {
            BodyItem::Pos(a) => {
                let mut mask: Mask = 0;
                for (i, arg) in a.args.iter().enumerate() {
                    match arg {
                        AtomArg::Const(_) => mask |= 1 << i,
                        AtomArg::Var(v) => {
                            if bound[*v as usize] {
                                mask |= 1 << i;
                            }
                        }
                    }
                }
                for arg in &a.args {
                    if let AtomArg::Var(v) = arg {
                        bound[*v as usize] = true;
                    }
                }
                if mask != 0 {
                    index_needs.push((a.pred, mask));
                }
                enc_atoms[item_idx] = Some(encode_atom(a, dict));
                steps.push(Step::Scan { item_idx, pred: a.pred, mask });
            }
            BodyItem::Neg(a) => {
                for arg in &a.args {
                    if let AtomArg::Var(v) = arg {
                        if !bound[*v as usize] {
                            return Err(EvalError::Unsafe(format!(
                                "rule {rule_idx}: variable {} unbound in negated atom {}",
                                rule.var_names[*v as usize],
                                symbols.resolve(a.pred)
                            )));
                        }
                    }
                }
                enc_atoms[item_idx] = Some(encode_atom(a, dict));
                steps.push(Step::NegCheck { item_idx, pred: a.pred });
            }
            BodyItem::Cond(e) => {
                let mut vars = Vec::new();
                e.collect_vars(&mut vars);
                for v in vars {
                    if !bound[v as usize] {
                        return Err(EvalError::Unsafe(format!(
                            "rule {rule_idx}: variable {} unbound in condition",
                            rule.var_names[v as usize]
                        )));
                    }
                }
                steps.push(Step::Filter { item_idx });
            }
            BodyItem::Assign(v, e) => {
                let mut vars = Vec::new();
                e.collect_vars(&mut vars);
                for w in vars {
                    if !bound[w as usize] {
                        return Err(EvalError::Unsafe(format!(
                            "rule {rule_idx}: variable {} unbound in assignment",
                            rule.var_names[w as usize]
                        )));
                    }
                }
                bound[*v as usize] = true;
                steps.push(Step::Bind { item_idx, var: *v });
            }
        }
    }

    let existentials = rule
        .existential_vars()
        .into_iter()
        .map(|v| {
            let name = &rule.var_names[v as usize];
            (v, symbols.intern(&format!("_ex_r{rule_idx}_{name}")))
        })
        .collect();

    Ok(RulePlan {
        steps,
        nvars,
        index_needs,
        existentials,
        enc_atoms,
        enc_head: encode_atom(&rule.head, dict),
    })
}

/// Body order for a delta variant: the delta atom first, then greedily —
/// conditions/assignments/negations as soon as their variables are bound,
/// and among the remaining positive atoms the one with the most
/// bound-or-constant argument positions (most selective index lookup).
/// Without this, moving the delta atom to the front could place a join
/// atom before the `comp` atom that binds its key, recreating a cross
/// product.
fn delta_order(rule: &Rule, delta_item: usize) -> Vec<usize> {
    let nvars = rule.var_names.len();
    let mut bound = vec![false; nvars];
    let mut order = vec![delta_item];
    if let BodyItem::Pos(a) = &rule.body[delta_item] {
        for v in a.vars() {
            bound[v as usize] = true;
        }
    }
    let mut remaining: Vec<usize> =
        (0..rule.body.len()).filter(|&i| i != delta_item).collect();

    while !remaining.is_empty() {
        // Eagerly place ready non-atom items (keeping original order).
        if let Some(k) = remaining.iter().position(|&i| match &rule.body[i] {
            BodyItem::Cond(e) => {
                let mut vs = Vec::new();
                e.collect_vars(&mut vs);
                vs.iter().all(|&v| bound[v as usize])
            }
            BodyItem::Assign(_, e) => {
                let mut vs = Vec::new();
                e.collect_vars(&mut vs);
                vs.iter().all(|&v| bound[v as usize])
            }
            BodyItem::Neg(a) => a.vars().iter().all(|&v| bound[v as usize]),
            BodyItem::Pos(_) => false,
        }) {
            let i = remaining.remove(k);
            if let BodyItem::Assign(v, _) = &rule.body[i] {
                bound[*v as usize] = true;
            }
            order.push(i);
            continue;
        }
        // Otherwise the most selective positive atom. Bound *variable*
        // positions dominate (they are join keys); constant positions
        // count less (a constant like the graph component may match the
        // whole relation); ties resolve to the original order.
        let (k, _) = remaining
            .iter()
            .enumerate()
            .filter_map(|(k, &i)| match &rule.body[i] {
                BodyItem::Pos(a) => {
                    let bound_vars = a
                        .args
                        .iter()
                        .filter(
                            |arg| matches!(arg, AtomArg::Var(v) if bound[*v as usize]),
                        )
                        .count();
                    let consts = a
                        .args
                        .iter()
                        .filter(|arg| matches!(arg, AtomArg::Const(_)))
                        .count();
                    Some((k, (bound_vars, consts)))
                }
                _ => None,
            })
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("unplaced non-atom item must have unbound vars from a future atom");
        let i = remaining.remove(k);
        if let BodyItem::Pos(a) = &rule.body[i] {
            for v in a.vars() {
                bound[v as usize] = true;
            }
        }
        order.push(i);
    }
    order
}

// ------------------------------------------------------------ evaluation

/// Stack buffer for index keys and negation probes: relations support at
/// most 64 columns (the [`Mask`] width), so no heap fallback is needed.
const MAX_COLS: usize = 64;

struct Ctx<'a> {
    symbols: &'a SymbolTable,
    dict: &'a TermDict,
    start: Instant,
    timeout: Option<Duration>,
    max_skolem_depth: usize,
}

impl Ctx<'_> {
    fn check_time(&self) -> Result<(), EvalError> {
        if let Some(t) = self.timeout {
            if self.start.elapsed() > t {
                return Err(EvalError::Timeout);
            }
        }
        Ok(())
    }
}

/// Evaluates a rule, appending instantiated head tuples to `out`.
/// `delta` optionally restricts one body occurrence to a tuple list.
fn eval_rule(
    plan: &RulePlan,
    rule: &Rule,
    db: &Database,
    delta: Option<(usize, &[Vec<TermId>])>,
    ctx: &Ctx<'_>,
    out: &mut FlatTuples,
) -> Result<(), EvalError> {
    out.arity = plan.enc_head.args.len();
    let mut env: Vec<Option<TermId>> = vec![None; plan.nvars];
    let mut ticks = 0u64;
    let r = join(
        plan, rule, db, delta, ctx, 0, &mut env, &mut ticks,
        &mut |env, ctx| {
            instantiate_head(plan, rule, env, ctx, out);
            Ok(())
        },
    );
    if std::env::var("SPARQLOG_TRACE").is_ok_and(|v| v == "2") {
        eprintln!("[eval]   join ticks: {ticks}");
    }
    r
}

/// Like [`eval_rule`] but yields complete environments (for aggregates).
fn eval_rule_envs(
    plan: &RulePlan,
    rule: &Rule,
    db: &Database,
    ctx: &Ctx<'_>,
    out: &mut Vec<Vec<Option<TermId>>>,
) -> Result<(), EvalError> {
    let mut env: Vec<Option<TermId>> = vec![None; plan.nvars];
    let mut ticks = 0u64;
    join(plan, rule, db, None, ctx, 0, &mut env, &mut ticks, &mut |env, _| {
        out.push(env.to_vec());
        Ok(())
    })
}

/// The emit callback of [`join`]: one call per complete binding.
type Emit<'a, 'b> =
    dyn FnMut(&[Option<TermId>], &Ctx<'_>) -> Result<(), EvalError> + 'a;

/// The recursive index-nested-loop join over the plan's steps.
#[allow(clippy::too_many_arguments)]
fn join(
    plan: &RulePlan,
    rule: &Rule,
    db: &Database,
    delta: Option<(usize, &[Vec<TermId>])>,
    ctx: &Ctx<'_>,
    step_idx: usize,
    env: &mut Vec<Option<TermId>>,
    ticks: &mut u64,
    emit: &mut Emit<'_, '_>,
) -> Result<(), EvalError> {
    *ticks += 1;
    if *ticks & 0xFFF == 0 {
        ctx.check_time()?;
    }
    let Some(step) = plan.steps.get(step_idx) else {
        return emit(env, ctx);
    };
    match step {
        Step::Scan { item_idx, pred, mask } => {
            let atom = plan.enc_atoms[*item_idx]
                .as_ref()
                .expect("scan step on non-positive item");
            // Delta override for this occurrence?
            if let Some((di, tuples)) = delta {
                if di == *item_idx {
                    for t in tuples {
                        if let Some(undo_mask) = bind_atom(atom, t, env) {
                            join(
                                plan, rule, db, delta, ctx, step_idx + 1, env, ticks,
                                emit,
                            )?;
                            unbind_atom(atom, undo_mask, env);
                        }
                    }
                    return Ok(());
                }
            }
            let Some(rel) = db.relation(*pred) else { return Ok(()) };
            if *mask == 0 {
                // Full scan over the flat storage (borrowed rows — no
                // clones, the ids are plain u64s).
                for i in 0..rel.len() as u32 {
                    let t = rel.row(i);
                    if let Some(undo_mask) = bind_atom(atom, t, env) {
                        join(plan, rule, db, delta, ctx, step_idx + 1, env, ticks, emit)?;
                        unbind_atom(atom, undo_mask, env);
                    }
                }
            } else {
                // Index lookup on the bound positions; the key lives in a
                // stack buffer — the hot loop does not allocate.
                let mut key = [TermId::NULL; MAX_COLS];
                let mut klen = 0usize;
                for (i, arg) in atom.args.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        key[klen] = match arg {
                            EArg::Id(id) => *id,
                            EArg::Var(v) => env[*v as usize].ok_or_else(|| {
                                EvalError::Unsafe("unbound key var".into())
                            })?,
                        };
                        klen += 1;
                    }
                }
                for &i in &*rel.lookup(*mask, &key[..klen]) {
                    let t = rel.row(i);
                    if let Some(undo_mask) = bind_atom(atom, t, env) {
                        join(plan, rule, db, delta, ctx, step_idx + 1, env, ticks, emit)?;
                        unbind_atom(atom, undo_mask, env);
                    }
                }
            }
            Ok(())
        }
        Step::NegCheck { item_idx, pred } => {
            let atom = plan.enc_atoms[*item_idx]
                .as_ref()
                .expect("neg step on non-negated item");
            let mut tuple = [TermId::NULL; MAX_COLS];
            for (i, arg) in atom.args.iter().enumerate() {
                tuple[i] = match arg {
                    EArg::Id(id) => *id,
                    EArg::Var(v) => env[*v as usize]
                        .ok_or_else(|| EvalError::Unsafe("unbound neg var".into()))?,
                };
            }
            let present = db
                .relation(*pred)
                .is_some_and(|r| r.contains(&tuple[..atom.args.len()]));
            if !present {
                join(plan, rule, db, delta, ctx, step_idx + 1, env, ticks, emit)?;
            }
            Ok(())
        }
        Step::Filter { item_idx } => {
            let expr = match &rule.body[*item_idx] {
                BodyItem::Cond(e) => e,
                _ => unreachable!("filter step on non-condition item"),
            };
            if expr.eval_bool_ids(env, ctx.dict, ctx.symbols) {
                join(plan, rule, db, delta, ctx, step_idx + 1, env, ticks, emit)?;
            }
            Ok(())
        }
        Step::Bind { item_idx, var } => {
            let expr = match &rule.body[*item_idx] {
                BodyItem::Assign(_, e) => e,
                _ => unreachable!("bind step on non-assignment item"),
            };
            if let Some(v) = expr.eval_id(env, ctx.dict, ctx.symbols) {
                let prev = env[*var as usize].take();
                // An assignment to an already-bound variable acts as an
                // equality constraint (used by `D = "default"` style items
                // where D may be pre-bound). Encoding is canonical, so id
                // equality is term equality; differing ids may still be
                // value-equal under numeric coercion, so fall back to the
                // decoded comparison.
                let ok = match prev {
                    Some(p) => {
                        p == v
                            || crate::expr::value_eq(
                                &ctx.dict.decode(p),
                                &ctx.dict.decode(v),
                                ctx.symbols,
                            )
                    }
                    None => true,
                };
                if ok {
                    env[*var as usize] = Some(v);
                    join(plan, rule, db, delta, ctx, step_idx + 1, env, ticks, emit)?;
                }
                env[*var as usize] = prev;
            }
            Ok(())
        }
    }
}

/// Binds an atom's variables against a tuple. Returns the mask of argument
/// positions whose variables were *newly* bound (to be undone by
/// [`unbind_atom`] after the recursive call), or `None` on mismatch (in
/// which case any partial bindings have already been rolled back).
fn bind_atom(atom: &EncAtom, tuple: &[TermId], env: &mut [Option<TermId>]) -> Option<u64> {
    if atom.args.len() != tuple.len() {
        return None;
    }
    let mut bound_here: u64 = 0;
    for (i, arg) in atom.args.iter().enumerate() {
        match arg {
            EArg::Id(id) => {
                if *id != tuple[i] {
                    unbind_atom(atom, bound_here, env);
                    return None;
                }
            }
            EArg::Var(v) => {
                let slot = &mut env[*v as usize];
                match slot {
                    Some(existing) => {
                        if *existing != tuple[i] {
                            unbind_atom(atom, bound_here, env);
                            return None;
                        }
                    }
                    None => {
                        *slot = Some(tuple[i]);
                        bound_here |= 1 << i;
                    }
                }
            }
        }
    }
    Some(bound_here)
}

/// Clears the variables bound by a preceding [`bind_atom`] call.
fn unbind_atom(atom: &EncAtom, bound_here: u64, env: &mut [Option<TermId>]) {
    for (i, arg) in atom.args.iter().enumerate() {
        if bound_here & (1 << i) != 0 {
            if let EArg::Var(v) = arg {
                env[*v as usize] = None;
            }
        }
    }
}

/// Instantiates the head atom under `env` directly into the flat output
/// buffer, Skolemising existential variables over the frontier. Rolls the
/// emission back when the Skolem-depth bound is exceeded (chase
/// termination — an O(1) check: depths are precomputed at interning
/// time).
fn instantiate_head(
    plan: &RulePlan,
    rule: &Rule,
    env: &[Option<TermId>],
    ctx: &Ctx<'_>,
    out: &mut FlatTuples,
) {
    // Existential Skolemisation: functor over the frontier values,
    // interned by identity (no structural Skolem terms are built).
    let mut ex_values: FxHashMap<VarId, TermId> = FxHashMap::default();
    if !plan.existentials.is_empty() {
        let frontier: Vec<TermId> = rule
            .frontier_vars()
            .into_iter()
            .filter_map(|v| env[v as usize])
            .collect();
        for (v, functor) in &plan.existentials {
            ex_values.insert(*v, ctx.dict.skolem(*functor, &frontier));
        }
    }
    let start = out.ids.len();
    for arg in &plan.enc_head.args {
        let id = match arg {
            EArg::Id(id) => *id,
            EArg::Var(v) => match env[*v as usize] {
                Some(id) => id,
                None => match ex_values.get(v) {
                    Some(&id) => id,
                    None => {
                        out.ids.truncate(start);
                        return;
                    }
                },
            },
        };
        if id.is_skolem() && ctx.dict.skolem_depth(id) > ctx.max_skolem_depth {
            out.ids.truncate(start);
            return;
        }
        out.ids.push(id);
    }
    out.count += 1;
}

// ------------------------------------------------------------ aggregates

fn aggregate(
    rule: &Rule,
    matches: Vec<Vec<Option<TermId>>>,
    ctx: &Ctx<'_>,
) -> Result<Vec<Vec<TermId>>, EvalError> {
    let symbols = ctx.symbols;
    let dict = ctx.dict;
    let spec = rule.aggregate.as_ref().expect("aggregate rule");
    // Group key: the head args except the result variable (as encoded
    // ids); values: the raw aggregate inputs per group, decoded — the
    // aggregate functions are an arithmetic boundary (kept individually
    // so AVG and DISTINCT can be computed exactly).
    let mut inputs: FxHashMap<Vec<TermId>, Vec<Option<Const>>> = FxHashMap::default();

    for env in &matches {
        let mut key = Vec::new();
        for arg in &rule.head.args {
            match arg {
                AtomArg::Const(c) => key.push(dict.encode(c)),
                AtomArg::Var(v) if *v == spec.result_var => {}
                AtomArg::Var(v) => {
                    key.push(env[*v as usize].unwrap_or(TermId::NULL))
                }
            }
        }
        let input = match &spec.input {
            None => Some(Const::Int(1)),
            Some(e) => e.eval_decoded(env, dict, symbols),
        };
        inputs.entry(key).or_default().push(input);
    }

    let mut out = Vec::new();
    for (key, vals) in inputs {
        let mut vals: Vec<Const> = vals.into_iter().flatten().collect();
        if spec.distinct {
            let mut seen = FxHashSet::default();
            vals.retain(|v| seen.insert(v.clone()));
        }
        let result = match spec.func {
            AggFunc::Count => Const::Int(vals.len() as i64),
            AggFunc::Sum => {
                let mut acc = 0f64;
                let mut all_int = true;
                for v in &vals {
                    match v.as_f64(symbols) {
                        Some(x) => {
                            if v.as_i64(symbols).is_none() {
                                all_int = false;
                            }
                            acc += x;
                        }
                        None => continue,
                    }
                }
                if all_int {
                    Const::Int(acc as i64)
                } else {
                    Const::Float(OrdF64(acc))
                }
            }
            AggFunc::Min => {
                let mut best: Option<Const> = None;
                for v in vals {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            if order_cmp(&v, &b, symbols) == std::cmp::Ordering::Less {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                best.unwrap_or(Const::Null)
            }
            AggFunc::Max => {
                let mut best: Option<Const> = None;
                for v in vals {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            if order_cmp(&v, &b, symbols)
                                == std::cmp::Ordering::Greater
                            {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                best.unwrap_or(Const::Null)
            }
            AggFunc::Avg => {
                let nums: Vec<f64> =
                    vals.iter().filter_map(|v| v.as_f64(symbols)).collect();
                if nums.is_empty() {
                    Const::Int(0)
                } else {
                    Const::Float(OrdF64(nums.iter().sum::<f64>() / nums.len() as f64))
                }
            }
        };
        let result_id = dict.encode(&result);
        // Rebuild the head tuple with the result plugged in.
        let mut tuple = Vec::with_capacity(rule.head.args.len());
        let mut key_iter = key.into_iter();
        for arg in &rule.head.args {
            match arg {
                AtomArg::Const(c) => {
                    tuple.push(dict.encode(c));
                    let _ = key_iter.next();
                }
                AtomArg::Var(v) if *v == spec.result_var => tuple.push(result_id),
                AtomArg::Var(_) => {
                    tuple.push(key_iter.next().unwrap_or(TermId::NULL))
                }
            }
        }
        out.push(tuple);
    }
    Ok(out)
}
