//! The evaluation engine: stratified, semi-naive, bottom-up fixpoint with
//! batched hash joins and optional multi-threaded rule/delta evaluation.
//!
//! This is the workspace's stand-in for the Vadalog system's reasoner. Per
//! stratum the engine runs
//!
//! 1. a *naive* first pass of every rule over the current database, then
//! 2. *semi-naive* rounds: each rule with a body atom whose predicate
//!    belongs to the current stratum is re-evaluated once per such
//!    occurrence, with that occurrence restricted to the last round's
//!    delta. Deduplication against the full relation guarantees
//!    termination on the set level; bag semantics lives entirely in the
//!    Skolem tuple-ID argument, as in the paper (§5.1).
//!
//! **Batched execution.** Each round's delta is a columnar
//! [`ColumnBatch`] over the flat `TermId` rows, and each (rule, delta
//! occurrence) pass is a *job* that scans its batch partition in a tight
//! loop, probing the relations' u64-keyed hash indexes (the hash-join
//! build side, built once by the planner and maintained incrementally on
//! insert — never rebuilt per round). Jobs emit head rows into
//! per-worker [`Staging`] buffers carrying precomputed row hashes;
//! afterwards a sequential merge pushes them through the relation's dedup
//! map in deterministic job order, which doubles as the semi-naive delta
//! filter.
//!
//! **Parallelism.** All rules of a pass — and range partitions of large
//! deltas — evaluate concurrently on a pool of scoped threads
//! (`std::thread::scope`, zero dependencies) against the *frozen*
//! snapshot of the database; the stratification's read/write sets prove
//! the jobs independent ([`crate::stratify::Stratification::pass_is_independent`]).
//! The thread count comes from [`EvalOptions::threads`], the
//! `SPARQLOG_THREADS` env var, or `available_parallelism`, in that
//! order; `1` selects the deterministic in-line path (no pool, no
//! locks). Because merges are sequential and ordered, a fixed
//! configuration always derives the same facts in the same insertion
//! order, and different thread counts produce the same fact *sets*
//! (insertion order may differ). Raw Skolem `TermId`s are the one
//! non-deterministic detail under parallelism — concurrent workers
//! intern them in scheduling order — so encoded state is not
//! byte-identical across runs; decoded results are.
//!
//! The entire fixpoint runs on dictionary-encoded tuples: atom constants
//! are encoded once at plan-compile time, join keys and environments are
//! fixed-width [`TermId`]s, and dedup probes hash raw `u64` rows. The
//! inner join loop performs **no heap allocation** — index keys live in
//! stack buffers and tuples are borrowed slices of the relations' flat
//! storage. Constants are decoded only at the filter/arithmetic boundary
//! ([`crate::expr`]) and in [`collect_output`].
//!
//! Existential head variables are Skolemised deterministically over the
//! rule's frontier, so re-deriving the same frontier binding yields the
//! same labelled null — the "restricted chase" behaviour that makes
//! ontological rules converge. Skolem terms intern once in the term
//! dictionary and compare by id; their nesting depth is precomputed, so
//! the configurable Skolem-depth bound (the substitute for Vadalog's
//! warded-chase termination strategy) is an O(1) check.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::database::{row_hash, ColumnBatch, Database, Index, Mask, Relation, Staging};
use crate::frozen::FrozenDb;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::govern::{AbortReason, Budget};
use crate::pool::Pool;
use crate::rule::{AggFunc, AtomArg, BodyItem, PostOp, Program, Rule, VarId};
use crate::stratify::{stratify, StratifyError};
use crate::symbols::{Sym, SymbolTable};
use crate::value::{Const, OrdF64, TermDict, TermId};

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Wall-clock budget; `None` = unlimited. The gMark experiments use
    /// this to reproduce the paper's time-outs.
    pub timeout: Option<Duration>,
    /// Maximum semi-naive rounds per stratum (a safety net; the default is
    /// effectively unlimited).
    pub max_rounds: usize,
    /// Skolem-nesting bound: head tuples containing deeper Skolem terms
    /// are not derived. Substitutes for Vadalog's chase-termination
    /// strategy on cyclic existential rules.
    pub max_skolem_depth: usize,
    /// Reorder rule bodies in semi-naive delta passes (delta atom first,
    /// then greedily by bound positions). On by default; the ablation
    /// bench (`cargo bench --bench ablation`) measures its effect. Only
    /// consulted for delta occurrences the physical plan (if any) does
    /// not cover.
    pub semi_naive_reorder: bool,
    /// Cost-based join planning ([`crate::plan`]): order rule bodies by
    /// estimated probe cardinality from relation statistics instead of
    /// rule-text order. On by default; `false` is the planner-off
    /// baseline the differential tests compare against. The mutable
    /// path plans inline only when the program reads at least
    /// [`PLAN_MIN_ROWS`] rows — below that the statistics pass costs
    /// more than any join order saves.
    pub plan: bool,
    /// Magic-sets demand transformation ([`crate::magic`]): restrict
    /// recursive predicates whose consumers bind constants (bound-endpoint
    /// property paths) to the demanded tuples. On by default; never
    /// applies to programs without `@output` declarations
    /// (materialisation).
    pub magic_sets: bool,
    /// Worker threads for rule/delta evaluation. `None` (the default)
    /// defers to the `SPARQLOG_THREADS` env var, then to
    /// `std::thread::available_parallelism()`. `Some(1)` forces the
    /// deterministic single-threaded path.
    pub threads: Option<usize>,
    /// The execution governor ([`crate::govern`]): deadline, derived-row
    /// cap, dictionary-growth cap and external cancellation, checked
    /// cooperatively at batch granularity throughout the fixpoint (and
    /// inherited by the magic-sets demand fixpoint). The unlimited
    /// default costs one branch per check. A governed evaluation that
    /// crosses a limit fails with [`EvalError::Aborted`]; the legacy
    /// [`EvalOptions::timeout`] keeps its historical
    /// [`EvalError::Timeout`].
    pub budget: Budget,
    /// Per-query profiling ([`crate::profile`]): record per-rule
    /// timings, per-round delta sizes and index builds into a
    /// [`QueryProfile`](crate::profile::QueryProfile) returned on
    /// [`EvalStats::profile`]. Off by default; the unprofiled path pays
    /// nothing (every recording site is behind this flag).
    pub profile: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            timeout: None,
            max_rounds: usize::MAX,
            max_skolem_depth: 64,
            semi_naive_reorder: true,
            plan: true,
            magic_sets: true,
            threads: None,
            budget: Budget::default(),
            profile: false,
        }
    }
}

impl EvalOptions {
    /// The effective worker count: explicit option, else the
    /// `SPARQLOG_THREADS` env var, else the machine's available
    /// parallelism (min 1).
    pub fn resolved_threads(&self) -> usize {
        self.threads
            .or_else(|| {
                std::env::var("SPARQLOG_THREADS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1)
    }
}

/// Statistics of one evaluation run.
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Total facts derived (after dedup).
    pub derived: usize,
    /// Head-candidate rows staged by rule bodies before dedup, summed
    /// across all passes. `staged - derived` is the work spent
    /// re-deriving facts the database already held — the counter the
    /// magic-sets demand-reuse path is judged by.
    pub staged: usize,
    /// Semi-naive rounds across all strata.
    pub rounds: usize,
    /// Number of strata.
    pub strata: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Join ticks across all rule jobs — every delta row scanned, index
    /// bucket entry probed or join-step entered. The engine's "join
    /// probes" figure: proportional to join work, counted by summing the
    /// jobs' existing per-job tick counters (no hot-path cost).
    pub probes: u64,
    /// Wall time per stratum, in evaluation order (two `Instant` reads
    /// per stratum — always on).
    pub stratum_elapsed: Vec<Duration>,
    /// The per-query profile, when [`EvalOptions::profile`] was armed.
    pub profile: Option<Box<crate::profile::QueryProfile>>,
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The wall-clock budget was exceeded (the paper's "time-out" rows).
    Timeout,
    /// Cyclic negation/aggregation.
    Stratification(String),
    /// A rule is unsafe (unbound variable in a negated atom, condition or
    /// head at evaluation position).
    Unsafe(String),
    /// `max_rounds` exceeded.
    RoundLimit,
    /// The execution governor stopped the evaluation: a [`Budget`]
    /// limit was crossed or its
    /// [`CancelToken`](crate::govern::CancelToken) fired. Carries how
    /// far execution got when it stopped.
    Aborted {
        /// Which limit tripped.
        reason: AbortReason,
        /// Wall-clock time from evaluation start to the abort.
        elapsed: Duration,
        /// Rows derived when the abort was observed (merged rows, plus
        /// staged not-yet-deduplicated candidates of the in-flight pass
        /// while a row cap is armed).
        rows_derived: usize,
    },
    /// An evaluation worker panicked; the panic was caught at the job
    /// boundary (the pool and its sibling jobs survive) and carries the
    /// rendered panic message. Indicates a bug in the engine, not in the
    /// query.
    Internal(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Timeout => write!(f, "evaluation timed out"),
            EvalError::Stratification(s) => write!(f, "{s}"),
            EvalError::Unsafe(s) => write!(f, "unsafe rule: {s}"),
            EvalError::RoundLimit => write!(f, "round limit exceeded"),
            EvalError::Aborted {
                reason,
                elapsed,
                rows_derived,
            } => write!(
                f,
                "evaluation aborted: {reason} after {elapsed:?} with {rows_derived} rows derived"
            ),
            EvalError::Internal(msg) => write!(f, "internal evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<StratifyError> for EvalError {
    fn from(e: StratifyError) -> Self {
        EvalError::Stratification(e.0)
    }
}

/// Evaluates `program` against `db` to fixpoint, mutating `db` in place.
///
/// With an effective thread count above one ([`EvalOptions::threads`] /
/// `SPARQLOG_THREADS` / available parallelism) the semi-naive passes run
/// on a scoped worker pool; otherwise everything stays on the calling
/// thread. Both paths produce the same set of facts.
pub fn evaluate(
    program: &Program,
    db: &mut Database,
    options: &EvalOptions,
) -> Result<EvalStats, EvalError> {
    evaluate_with_plan(program, db, options, None)
}

/// [`evaluate`] with an explicit physical plan. `Some(plan)` means the
/// caller already planned (and, if enabled, magic-rewrote) the program —
/// the serving layer's plan-cache hit path, which must perform zero
/// planning work here. `None` plans inline when [`EvalOptions::plan`] is
/// set and applies the magic-sets rewrite when [`EvalOptions::magic_sets`]
/// is set.
pub fn evaluate_with_plan(
    program: &Program,
    db: &mut Database,
    options: &EvalOptions,
    plan: Option<&crate::plan::ProgramPlan>,
) -> Result<EvalStats, EvalError> {
    // Arm the governor's clock once, at the outermost entry: a relative
    // timeout becomes an absolute deadline shared by everything this call
    // runs — including the magic-sets demand fixpoint below, whose
    // sub-options clone the (already-armed) budget and therefore cannot
    // restart the clock.
    let armed_options;
    let options = if options.budget.needs_arming() {
        armed_options = EvalOptions {
            budget: options.budget.armed(),
            ..options.clone()
        };
        &armed_options
    } else {
        options
    };
    // A supplied plan is always for the program as handed to us; the
    // rewrite only runs when we are planning (or running unplanned)
    // locally. Whether the rewrite pays off depends on the data, not the
    // program — so the demand fixpoint (cheap, linear in the demanded
    // subgraph) is evaluated first, into `db` itself, and the rewrite is
    // kept only when the measured demand sets actually prune
    // ([`crate::magic::demand_prunes`]). When it is kept, the demand
    // rules and magic seeds are stripped from the program that runs
    // ([`MagicRewrite::without_demand`](crate::magic::MagicRewrite::without_demand)):
    // the measurement already saturated those relations in `db`, so the
    // main evaluation reuses its derivations instead of re-staging every
    // demand fact into the dedup probe. The keep/demote decision stays a
    // pure function of program and data, so every evaluation path —
    // mutable, frozen overlay, or the serving layer's plan cache, which
    // runs the same measurement — materialises the same relations.
    let rewritten;
    let program = if plan.is_none() && options.magic_sets {
        match crate::magic::magic_sets_rewrite_analyzed(program, db.symbols()) {
            Some(rw) => {
                let measured = match crate::magic::demand_subprogram(&rw) {
                    Some(sub) => {
                        let sub_options = EvalOptions {
                            magic_sets: false,
                            plan: false,
                            threads: Some(1),
                            // The caller sees only the main run's stats,
                            // so a sub-profile would be dropped unseen.
                            profile: false,
                            ..options.clone()
                        };
                        evaluate_with_plan(&sub, db, &sub_options, None)?;
                        Some(crate::magic::demand_prunes(&rw, db))
                    }
                    // Not measurable in isolation: keep the rewrite.
                    None => None,
                };
                match measured {
                    // Measured and pruning: the demand fixpoint is
                    // already saturated in `db`, so run only the guarded
                    // remainder — re-deriving the demand sets would stage
                    // (and dedup away) every one of their facts again.
                    Some(true) => {
                        rewritten = rw
                            .without_demand()
                            .expect("measured rewrite has a demand closure");
                        &rewritten
                    }
                    Some(false) => program,
                    None => {
                        rewritten = rw.program;
                        &rewritten
                    }
                }
            }
            None => program,
        }
    } else {
        program
    };
    let threads = options.resolved_threads();
    if threads <= 1 {
        return evaluate_inner(program, db, options, None, plan);
    }
    let pool = Pool::new(threads);
    std::thread::scope(|s| {
        let handle = PoolHandle {
            pool: &pool,
            scope: s,
            spawned: std::cell::Cell::new(false),
        };
        // Shutdown-on-drop: a panic inside `evaluate_inner` (e.g. in a
        // job claimed by this thread) must still unpark the workers, or
        // the scope's implicit join deadlocks instead of propagating.
        let _guard = crate::pool::ShutdownGuard(&pool);
        evaluate_inner(program, db, options, Some(&handle), plan)
    })
}

/// Evaluates `program` against a frozen snapshot, collecting all
/// derivations into a fresh overlay database (shared symbol table and
/// dictionary, reads falling through to `base`) — the `&self`-style
/// evaluation entry for read-only query serving.
///
/// Any number of threads may call this concurrently on the same `base`:
/// the snapshot is never written, each call owns its overlay exclusively,
/// and the shared symbol table / term dictionary are internally
/// synchronised. Returns the overlay (from which output predicates are
/// read) alongside the run's statistics.
pub fn evaluate_frozen(
    program: &Program,
    base: &Arc<FrozenDb>,
    options: &EvalOptions,
) -> Result<(Database, EvalStats), EvalError> {
    evaluate_frozen_with_plan(program, base, options, None)
}

/// [`evaluate_frozen`] with an explicit physical plan — the serving
/// layer's entry once its plan cache has a (possibly magic-rewritten)
/// program and plan for the query. See [`evaluate_with_plan`] for the
/// `plan` contract.
pub fn evaluate_frozen_with_plan(
    program: &Program,
    base: &Arc<FrozenDb>,
    options: &EvalOptions,
    plan: Option<&crate::plan::ProgramPlan>,
) -> Result<(Database, EvalStats), EvalError> {
    let mut db = Database::overlay(base.clone());
    let stats = evaluate_with_plan(program, &mut db, options, plan)?;
    Ok((db, stats))
}

/// Lazily spawns the worker threads on the first genuinely parallel pass,
/// so evaluations whose passes are all single-job (point queries, tiny
/// programs) never pay thread spawn/teardown even at a high configured
/// thread count.
struct PoolHandle<'scope, 'env> {
    pool: &'env Pool,
    scope: &'scope std::thread::Scope<'scope, 'env>,
    spawned: std::cell::Cell<bool>,
}

impl PoolHandle<'_, '_> {
    fn threads(&self) -> usize {
        self.pool.threads
    }

    fn run(&self, njobs: usize, f: &(dyn Fn(usize) + Sync)) -> Vec<crate::pool::JobPanic> {
        if !self.spawned.get() {
            self.spawned.set(true);
            let p = self.pool;
            for _ in 1..p.threads {
                self.scope.spawn(move || p.worker());
            }
        }
        self.pool.run(njobs, f)
    }
}

/// One evaluation job of a pass: a rule plan applied to (a partition of)
/// a delta batch, or a full naive pass of the rule.
struct Job<'a> {
    plan: &'a RulePlan,
    rule: &'a Rule,
    /// Index of `rule` in the program — the profiler's attribution key.
    rule_idx: usize,
    /// `(body item, batch, row range)` — the delta restriction, if any.
    delta: Option<(usize, &'a ColumnBatch, usize, usize)>,
}

/// Row-count floor for inline planning on the mutable path: below this
/// many total rows read by the program, any join order is already fast
/// and the per-call statistics pass would be pure overhead on hot point
/// evaluations. The serving layer plans explicitly from its memoised
/// snapshot statistics and is not subject to this heuristic.
pub const PLAN_MIN_ROWS: usize = 4096;

/// Inline planning pays off only when some rule actually joins (bodies
/// with fewer than two positive atoms have no order freedom worth a
/// statistics pass) and the program reads at least [`PLAN_MIN_ROWS`]
/// rows of data for the order to matter.
fn worth_planning(program: &Program, db: &Database) -> bool {
    let joins = program.rules.iter().any(|r| {
        r.body
            .iter()
            .filter(|i| matches!(i, BodyItem::Pos(_)))
            .count()
            >= 2
    });
    if !joins {
        return false;
    }
    let mut preds: Vec<crate::symbols::Sym> = Vec::new();
    for rule in &program.rules {
        for item in &rule.body {
            if let BodyItem::Pos(a) | BodyItem::Neg(a) = item {
                if !preds.contains(&a.pred) {
                    preds.push(a.pred);
                }
            }
        }
    }
    let rows: usize = preds
        .into_iter()
        .map(|p| db.relation(p).map_or(0, |r| r.len()))
        .sum();
    rows >= PLAN_MIN_ROWS
}

fn evaluate_inner(
    program: &Program,
    db: &mut Database,
    options: &EvalOptions,
    pool: Option<&PoolHandle<'_, '_>>,
    plan: Option<&crate::plan::ProgramPlan>,
) -> Result<EvalStats, EvalError> {
    let start = Instant::now();
    let symbols = db.symbols().clone();
    let dict = db.dict().clone();

    // Load the program's bundled facts (the T_D encode boundary for
    // facts carried by the program itself).
    let mut derived = 0usize;
    let mut scratch: Vec<TermId> = Vec::new();
    for (pred, tuple) in &program.facts {
        scratch.clear();
        scratch.extend(tuple.iter().map(|c| dict.encode(c)));
        if db.add_fact_ids(*pred, &scratch) {
            derived += 1;
        }
    }

    // The physical plan: the caller's (plan-cache hit), or computed here
    // from current relation statistics. A plan whose rule count does not
    // match the program (stale cache against a different translation) is
    // ignored rather than trusted.
    let computed_plan;
    let plan = match plan {
        Some(p) if p.rules.len() == program.rules.len() => Some(p),
        Some(_) => None,
        None if options.plan && worth_planning(program, db) => {
            let stats = crate::stats::DbStats::collect_sampled(
                db.relations(),
                crate::stats::INLINE_SAMPLE_LIMIT,
            );
            computed_plan = crate::plan::plan_program(program, &symbols, &stats).ok();
            computed_plan.as_ref()
        }
        None => None,
    };

    let strat = stratify(program, &symbols)?;
    let plans: Vec<RulePlan> = program
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| {
            // Plan orders are advice: if one fails to compile (it cannot,
            // unless stale), rule-text order is the safe authority.
            match plan.map(|p| p.rules[i].order.as_slice()) {
                Some(o) => compile_rule(i, r, &symbols, &dict, Some(o))
                    .or_else(|_| compile_rule(i, r, &symbols, &dict, None)),
                None => compile_rule(i, r, &symbols, &dict, None),
            }
        })
        .collect::<Result<_, _>>()?;

    // `SPARQLOG_TRACE=1` prints per-rule evaluation progress to stderr —
    // the engine's answer to Vadalog's provenance/debugging output
    // (Appendix C: "information for debugging/explanation purposes").
    // `=2` additionally reports join ticks. Read once, not per rule pass.
    let trace: u8 = std::env::var("SPARQLOG_TRACE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let governed = !options.budget.is_unlimited();
    let ctx = Ctx {
        symbols: &symbols,
        dict: &dict,
        start,
        timeout: options.timeout,
        max_skolem_depth: options.max_skolem_depth,
        trace,
        budget: &options.budget,
        governed,
        dict_base: if governed { dict.interned_terms() } else { 0 },
        derived: AtomicUsize::new(derived),
        profile: options.profile,
    };
    ctx.check()?;

    let mut stats = EvalStats {
        derived,
        strata: strat.strata.len(),
        ..EvalStats::default()
    };
    // The profiler, armed only on request — rule display texts are built
    // here once, so the unprofiled path never renders a rule.
    let mut pb = options
        .profile
        .then(|| crate::profile::ProfileBuilder::new(program, &symbols));
    // Recycled per-job staging buffers (see `run_pass`).
    let mut spare: Vec<Staging> = Vec::new();

    for (stratum_idx, stratum_rules) in strat.strata.iter().enumerate() {
        let stratum_start = Instant::now();
        if let Some(pb) = pb.as_mut() {
            pb.begin_stratum(stratum_idx);
        }
        // Predicates defined in this stratum (their deltas drive the
        // semi-naive rounds) — the stratum's write set.
        let stratum_preds: FxHashSet<Sym> =
            strat.stratum_writes(stratum_rules).into_iter().collect();
        debug_assert!(
            strat.pass_is_independent(stratum_rules, program),
            "stratifier emitted a stratum whose rules are not snapshot-independent"
        );

        // Delta-first plan variants for the semi-naive rounds: one per
        // body occurrence of a this-stratum predicate.
        let mut delta_plans: FxHashMap<(usize, usize), RulePlan> = FxHashMap::default();
        for &ri in stratum_rules {
            let rule = &program.rules[ri];
            for item_idx in rule.positive_occurrences_of(&stratum_preds) {
                // Order preference: the physical plan's delta variant,
                // else the delta-first heuristic, else rule-text order
                // (the delta restriction itself comes from the job, not
                // the order).
                let order: Option<Vec<usize>> = plan
                    .and_then(|p| p.delta.get(&(ri, item_idx)))
                    .map(|ro| ro.order.clone())
                    .or_else(|| {
                        options
                            .semi_naive_reorder
                            .then(|| delta_order(rule, item_idx))
                    });
                let compiled = match order {
                    Some(o) => compile_rule(ri, rule, &symbols, &dict, Some(&o))
                        .or_else(|_| compile_rule(ri, rule, &symbols, &dict, None)),
                    None => compile_rule(ri, rule, &symbols, &dict, None),
                }?;
                delta_plans.insert((ri, item_idx), compiled);
            }
        }

        // Make sure every index the plans need exists — the hash-join
        // build sides. Built once here; maintained incrementally by every
        // merge, so rounds never rebuild them.
        let mut indexes_built = 0usize;
        for &ri in stratum_rules {
            for need in &plans[ri].index_needs {
                indexes_built += db.ensure_index(need.0, need.1) as usize;
            }
        }
        for plan in delta_plans.values() {
            for need in &plan.index_needs {
                indexes_built += db.ensure_index(need.0, need.1) as usize;
            }
        }
        if let Some(pb) = pb.as_mut() {
            pb.record_index_builds(indexes_built);
        }

        // Aggregate rules run once, after the non-aggregate fixpoint.
        let (agg_rules, plain_rules): (Vec<usize>, Vec<usize>) = stratum_rules
            .iter()
            .partition(|&&i| program.rules[i].aggregate.is_some());

        // --- naive first pass ---
        // All rules evaluate against the same snapshot (concurrently when
        // a pool is available); the sequential merge afterwards both
        // dedups and records the fresh tuples as the first delta. A rule
        // whose derivations another rule of this pass would consume still
        // converges: those tuples are in the delta, so round 1's
        // delta-restricted variants see them.
        let mut delta: FxHashMap<Sym, ColumnBatch> = FxHashMap::default();
        {
            let jobs: Vec<Job<'_>> = plain_rules
                .iter()
                .map(|&ri| Job {
                    plan: &plans[ri],
                    rule: &program.rules[ri],
                    rule_idx: ri,
                    delta: None,
                })
                .collect();
            if trace >= 1 {
                for &ri in &plain_rules {
                    eprintln!(
                        "[eval] naive rule {ri}: {}",
                        program.rules[ri].display(&symbols)
                    );
                }
            }
            let round_start = Instant::now();
            let (staged0, derived0) = (stats.staged, stats.derived);
            let outs = run_pass(&jobs, db, &ctx, pool, &mut spare);
            merge_pass(
                db, &jobs, outs, &mut delta, &mut stats, &ctx, &mut spare, &mut pb,
            )?;
            if let Some(pb) = pb.as_mut() {
                pb.record_round(crate::profile::RoundProfile {
                    round: 0,
                    delta_rows: 0,
                    staged: stats.staged - staged0,
                    derived: stats.derived - derived0,
                    elapsed: round_start.elapsed(),
                });
            }
        }

        // Shed indexes on this stratum's *written* relations that only
        // the one-shot naive pass probed (the classic case: the naive
        // plan of `tc(X,Z) :- edge(X,Y), tc(Y,Z)` probes tc by Y, but
        // every delta round drives from the tc batch and probes only
        // edge). Without this, every merge insert would keep them
        // current for nothing. Relations not written here pay no
        // maintenance, so their indexes stay for later queries.
        {
            let keep: FxHashSet<(Sym, Mask)> = delta_plans
                .values()
                .flat_map(|p| p.index_needs.iter().copied())
                .chain(
                    agg_rules
                        .iter()
                        .flat_map(|&ri| plans[ri].index_needs.iter().copied()),
                )
                .collect();
            for &ri in &plain_rules {
                for &(pred, mask) in &plans[ri].index_needs {
                    if stratum_preds.contains(&pred) && !keep.contains(&(pred, mask)) {
                        db.relation_mut(pred).drop_index(mask);
                    }
                }
            }
        }

        // --- semi-naive rounds ---
        let mut rounds = 0usize;
        while delta.values().any(|b| !b.is_empty()) {
            rounds += 1;
            stats.rounds += 1;
            if rounds > options.max_rounds {
                return Err(EvalError::RoundLimit);
            }
            ctx.check()?;

            let mut jobs: Vec<Job<'_>> = Vec::new();
            for &ri in &plain_rules {
                let rule = &program.rules[ri];
                // One variant per body occurrence of a this-stratum pred,
                // range-partitioned across the pool's workers when the
                // batch is large enough to split.
                for (item_idx, item) in rule.body.iter().enumerate() {
                    let atom_pred = match item {
                        BodyItem::Pos(a) if stratum_preds.contains(&a.pred) => a.pred,
                        _ => continue,
                    };
                    let Some(batch) = delta.get(&atom_pred) else {
                        continue;
                    };
                    if batch.is_empty() {
                        continue;
                    }
                    let plan = &delta_plans[&(ri, item_idx)];
                    // Partition only batches with enough rows to amortise
                    // a job's fixed cost (staging buffer, plan
                    // resolution, pool dispatch); long-tail rounds with
                    // shrinking deltas stay one job each.
                    let parts = match pool {
                        Some(p) => p.threads().min((batch.len() / MIN_PARTITION_ROWS).max(1)),
                        None => 1,
                    };
                    let len = batch.len();
                    for c in 0..parts {
                        let (lo, hi) = (c * len / parts, (c + 1) * len / parts);
                        if lo < hi {
                            jobs.push(Job {
                                plan,
                                rule,
                                rule_idx: ri,
                                delta: Some((item_idx, batch, lo, hi)),
                            });
                        }
                    }
                }
            }
            if jobs.is_empty() {
                // A delta no rule consumes (e.g. a predicate only read by
                // later strata) ends the fixpoint.
                break;
            }
            let round_start = Instant::now();
            let (staged0, derived0) = (stats.staged, stats.derived);
            let delta_rows: usize = if pb.is_some() {
                delta.values().map(|b| b.len()).sum()
            } else {
                0
            };
            let outs = run_pass(&jobs, db, &ctx, pool, &mut spare);
            let mut next: FxHashMap<Sym, ColumnBatch> = FxHashMap::default();
            if trace >= 1 {
                eprintln!("[eval] round {rounds}: {} jobs", jobs.len());
            }
            merge_pass(
                db, &jobs, outs, &mut next, &mut stats, &ctx, &mut spare, &mut pb,
            )?;
            if let Some(pb) = pb.as_mut() {
                pb.record_round(crate::profile::RoundProfile {
                    round: rounds,
                    delta_rows,
                    staged: stats.staged - staged0,
                    derived: stats.derived - derived0,
                    elapsed: round_start.elapsed(),
                });
            }
            drop(jobs);
            delta = next;
        }

        // --- aggregates ---
        for &ri in &agg_rules {
            let agg_start = Instant::now();
            let rule = &program.rules[ri];
            let plan = &plans[ri];
            let mut matches = Vec::new();
            eval_rule_envs(plan, rule, db, &ctx, &mut matches)?;
            let tuples = aggregate(rule, matches, &ctx)?;
            stats.staged += tuples.len();
            let (staged, mut derived_here) = (tuples.len(), 0usize);
            for t in tuples {
                if db.add_fact_ids(rule.head.pred, &t) {
                    stats.derived += 1;
                    derived_here += 1;
                    ctx.note_derived()?;
                }
            }
            if let Some(pb) = pb.as_mut() {
                pb.record_job(
                    ri,
                    staged,
                    derived_here,
                    agg_start.elapsed().as_nanos() as u64,
                );
            }
        }

        stats.stratum_elapsed.push(stratum_start.elapsed());
        if let Some(pb) = pb.as_mut() {
            pb.end_stratum(*stats.stratum_elapsed.last().expect("just pushed"));
        }
    }

    stats.elapsed = start.elapsed();
    stats.profile = pb.map(|b| Box::new(b.finish(stats.elapsed)));
    Ok(stats)
}

/// Runs one pass's jobs — on the pool when available (each worker filling
/// its own staging buffer against the frozen database snapshot), inline
/// otherwise — and returns the per-job outcomes in job order.
fn run_pass(
    jobs: &[Job<'_>],
    db: &Database,
    ctx: &Ctx<'_>,
    pool: Option<&PoolHandle<'_, '_>>,
    spare: &mut Vec<Staging>,
) -> Vec<Result<Staging, EvalError>> {
    // Pre-filtering against the snapshot only pays when several workers
    // would otherwise funnel duplicate candidates into the sequential
    // merge; the single-threaded path lets the merge's own dedup probe do
    // that work (same probe count).
    let prefilter = pool.is_some();
    // Staging buffers are recycled across passes (via `spare`), so a
    // long fixpoint reuses a handful of allocations instead of growing a
    // fresh buffer every round.
    let slots: Vec<Mutex<Result<Staging, EvalError>>> = jobs
        .iter()
        .map(|_| {
            let mut s = spare.pop().unwrap_or_default();
            s.clear();
            Mutex::new(Ok(s))
        })
        .collect();
    let run_job = |j: usize| {
        let job = &jobs[j];
        let dedup_against = if prefilter {
            db.relation(job.rule.head.pred)
        } else {
            None
        };
        let mut guard = slots[j].lock().unwrap();
        if let Ok(out) = guard.as_mut() {
            // Job wall time is profiler-only: the two `Instant` reads per
            // job stay off the unprofiled path.
            let job_start = ctx.profile.then(Instant::now);
            if let Err(e) = eval_rule(job.plan, job.rule, db, job.delta, ctx, dedup_against, out) {
                *guard = Err(e);
            } else if let Some(t0) = job_start {
                out.nanos = t0.elapsed().as_nanos() as u64;
            }
        }
    };
    // A job that panics (an engine bug, not a query error) is caught at
    // the job boundary — by the pool on the parallel path, by
    // `catch_unwind` inline — and becomes that job's `Internal` error:
    // sibling jobs complete, the workers survive for the next pass, and
    // the overlay database unwinds normally with the evaluation's `Err`.
    let poison = |slot: &Mutex<Result<Staging, EvalError>>, message: String| {
        let mut guard = match slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = Err(EvalError::Internal(format!(
            "evaluation worker panicked: {message}"
        )));
    };
    match pool {
        Some(p) if jobs.len() > 1 => {
            for jp in p.run(jobs.len(), &run_job) {
                poison(&slots[jp.job], jp.message);
            }
        }
        _ => {
            for (j, slot) in slots.iter().enumerate() {
                if let Err(payload) =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(j)))
                {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    poison(slot, message);
                }
            }
        }
    }
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
        .collect()
}

/// Merges a pass's staged outputs into the database in deterministic job
/// order; fresh tuples are appended to `delta`'s columnar batches. The
/// relation's dedup map is the only per-tuple hash probe (the staging
/// buffers carry each row's hash precomputed).
#[allow(clippy::too_many_arguments)]
fn merge_pass(
    db: &mut Database,
    jobs: &[Job<'_>],
    outs: Vec<Result<Staging, EvalError>>,
    delta: &mut FxHashMap<Sym, ColumnBatch>,
    stats: &mut EvalStats,
    ctx: &Ctx<'_>,
    spare: &mut Vec<Staging>,
    pb: &mut Option<crate::profile::ProfileBuilder>,
) -> Result<(), EvalError> {
    let derived = &mut stats.derived;
    let staged = &mut stats.staged;
    for (job, out) in jobs.iter().zip(outs) {
        let mut out = out?;
        *staged += out.count;
        stats.probes += out.ticks;
        // Merges are sequential and can dominate huge passes: keep the
        // governor's batch granularity across them (per job, not per row).
        ctx.check()?;
        if ctx.trace >= 1 {
            eprintln!(
                "[eval]   merge {}: {} tuples",
                job.rule.display(ctx.symbols),
                out.count
            );
        }
        let pred = job.rule.head.pred;
        let mut fresh = 0usize;
        if out.count == 0 {
            // fall through to recycling
        } else if out.arity == 0 {
            if db.add_fact_ids(pred, &[]) {
                fresh = 1;
                delta
                    .entry(pred)
                    .or_insert_with(|| ColumnBatch::new(0))
                    .push_row(&[]);
            }
        } else {
            // Resolve the relation and the delta batch once per job —
            // the head predicate is fixed — then run the relation's
            // batch merge.
            let batch = delta
                .entry(pred)
                .or_insert_with(|| ColumnBatch::new(out.arity));
            fresh = db.relation_mut(pred).merge_staged(&out, batch);
        }
        *derived += fresh;
        if let Some(pb) = pb.as_mut() {
            pb.record_job(job.rule_idx, out.count, fresh, out.nanos);
        }
        out.clear();
        spare.push(out);
    }
    // Resync the governor's row counter to the exact post-dedup total:
    // while a row cap is armed the jobs of the pass inflated it with
    // per-emission staged candidates.
    ctx.derived.store(*derived, Ordering::Relaxed);
    Ok(())
}

/// Applies a predicate's `@post` directives and returns the final tuples,
/// decoded back to boundary constants (the T_S decode boundary: encoded
/// ids never escape the engine).
pub fn collect_output(program: &Program, db: &Database, pred: Sym) -> Vec<Vec<Const>> {
    let symbols = db.symbols();
    let mut tuples: Vec<Vec<Const>> = db
        .relation(pred)
        .map(|r| r.iter().map(|t| db.decode_tuple(t)).collect())
        .unwrap_or_default();
    for (p, op) in &program.post {
        if *p != pred {
            continue;
        }
        match op {
            PostOp::OrderBy(cols) => {
                tuples.sort_by(|a, b| {
                    for &(col, desc) in cols {
                        let (x, y) = (&a[col], &b[col]);
                        let ord = order_cmp(x, y, symbols);
                        let ord = if desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
            }
            PostOp::Offset(n) => {
                tuples = tuples.split_off((*n).min(tuples.len()));
            }
            PostOp::Limit(n) => {
                tuples.truncate(*n);
            }
        }
    }
    tuples
}

/// Total order used by `orderby`: nulls first, then blank nodes, IRIs,
/// then literals (numerics by value). Mirrors the SPARQL `ORDER BY` term
/// ordering closely; the paper itself delegates to "the sorting strategy
/// employed by the Vadalog system" (§4.3), which is what this is.
pub fn order_cmp(a: &Const, b: &Const, symbols: &SymbolTable) -> std::cmp::Ordering {
    fn rank(c: &Const) -> u8 {
        match c {
            Const::Null => 0,
            Const::Skolem(_) => 1,
            Const::Bnode(_) => 2,
            Const::Iri(_) => 3,
            _ => 4, // literals
        }
    }
    let (ra, rb) = (rank(a), rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Const::Iri(x), Const::Iri(y)) | (Const::Bnode(x), Const::Bnode(y)) => {
            symbols.resolve(*x).cmp(&symbols.resolve(*y))
        }
        _ => match crate::expr::value_cmp(a, b, symbols) {
            Some(o) => o,
            None => format!("{a:?}").cmp(&format!("{b:?}")),
        },
    }
}

// ------------------------------------------------------------------ plans

/// One compiled body step.
#[derive(Debug, Clone)]
enum Step {
    /// Scan/lookup a positive atom. `mask` = positions bound at this point
    /// (constants or already-bound variables).
    Scan {
        item_idx: usize,
        pred: Sym,
        mask: Mask,
    },
    /// Check absence of a fully-bound negated atom.
    NegCheck { item_idx: usize, pred: Sym },
    /// Evaluate a filter condition.
    Filter { item_idx: usize },
    /// Evaluate an assignment.
    Bind { item_idx: usize, var: VarId },
}

/// A pre-encoded atom argument: constants encode to ids at plan-compile
/// time so the join loop compares raw `u64`s.
#[derive(Debug, Clone, Copy)]
enum EArg {
    Id(TermId),
    Var(VarId),
}

/// An atom with pre-encoded arguments, parallel to a body item (or the
/// head) of the source rule.
#[derive(Debug, Clone)]
struct EncAtom {
    args: Box<[EArg]>,
}

/// A compiled rule.
#[derive(Debug, Clone)]
struct RulePlan {
    steps: Vec<Step>,
    nvars: usize,
    /// Indexes the plan requires: `(pred, mask)` pairs.
    index_needs: Vec<(Sym, Mask)>,
    /// Existential head vars with their Skolem functor.
    existentials: Vec<(VarId, Sym)>,
    /// Encoded positive/negated atoms, indexed by body item.
    enc_atoms: Vec<Option<EncAtom>>,
    /// The encoded head.
    enc_head: EncAtom,
}

fn encode_atom(atom: &crate::rule::Atom, dict: &TermDict) -> EncAtom {
    EncAtom {
        args: atom
            .args
            .iter()
            .map(|arg| match arg {
                AtomArg::Const(c) => EArg::Id(dict.encode(c)),
                AtomArg::Var(v) => EArg::Var(*v),
            })
            .collect(),
    }
}

/// Compiles a rule into an evaluation plan, consuming body items in
/// `order` (a permutation of the body's indices — from the cost-based
/// planner or [`delta_order`]) or rule-text order when `None`. Masks and
/// safety are recomputed from the given order, never taken on faith from
/// a plan: a stale order can cost performance but not correctness.
fn compile_rule(
    rule_idx: usize,
    rule: &Rule,
    symbols: &SymbolTable,
    dict: &TermDict,
    order: Option<&[usize]>,
) -> Result<RulePlan, EvalError> {
    let nvars = rule.var_names.len();
    let mut bound = vec![false; nvars];
    let mut steps = Vec::new();
    let mut index_needs = Vec::new();
    let mut enc_atoms: Vec<Option<EncAtom>> = vec![None; rule.body.len()];

    let is_permutation = |o: &[usize]| {
        let mut seen = vec![false; rule.body.len()];
        o.len() == rule.body.len()
            && o.iter().all(|&i| {
                let fresh = i < rule.body.len() && !seen[i];
                if fresh {
                    seen[i] = true;
                }
                fresh
            })
    };
    let order: Vec<usize> = match order {
        Some(o) if is_permutation(o) => o.to_vec(),
        Some(_) | None => (0..rule.body.len()).collect(),
    };
    for item_idx in order {
        let item = &rule.body[item_idx];
        match item {
            BodyItem::Pos(a) => {
                let mut mask: Mask = 0;
                for (i, arg) in a.args.iter().enumerate() {
                    match arg {
                        AtomArg::Const(_) => mask |= 1 << i,
                        AtomArg::Var(v) => {
                            if bound[*v as usize] {
                                mask |= 1 << i;
                            }
                        }
                    }
                }
                for arg in &a.args {
                    if let AtomArg::Var(v) = arg {
                        bound[*v as usize] = true;
                    }
                }
                if mask != 0 {
                    index_needs.push((a.pred, mask));
                }
                enc_atoms[item_idx] = Some(encode_atom(a, dict));
                steps.push(Step::Scan {
                    item_idx,
                    pred: a.pred,
                    mask,
                });
            }
            BodyItem::Neg(a) => {
                for arg in &a.args {
                    if let AtomArg::Var(v) = arg {
                        if !bound[*v as usize] {
                            return Err(EvalError::Unsafe(format!(
                                "rule {rule_idx}: variable {} unbound in negated atom {}",
                                rule.var_names[*v as usize],
                                symbols.resolve(a.pred)
                            )));
                        }
                    }
                }
                enc_atoms[item_idx] = Some(encode_atom(a, dict));
                steps.push(Step::NegCheck {
                    item_idx,
                    pred: a.pred,
                });
            }
            BodyItem::Cond(e) => {
                let mut vars = Vec::new();
                e.collect_vars(&mut vars);
                for v in vars {
                    if !bound[v as usize] {
                        return Err(EvalError::Unsafe(format!(
                            "rule {rule_idx}: variable {} unbound in condition",
                            rule.var_names[v as usize]
                        )));
                    }
                }
                steps.push(Step::Filter { item_idx });
            }
            BodyItem::Assign(v, e) => {
                let mut vars = Vec::new();
                e.collect_vars(&mut vars);
                for w in vars {
                    if !bound[w as usize] {
                        return Err(EvalError::Unsafe(format!(
                            "rule {rule_idx}: variable {} unbound in assignment",
                            rule.var_names[w as usize]
                        )));
                    }
                }
                bound[*v as usize] = true;
                steps.push(Step::Bind { item_idx, var: *v });
            }
        }
    }

    let existentials = rule
        .existential_vars()
        .into_iter()
        .map(|v| {
            let name = &rule.var_names[v as usize];
            (v, symbols.intern(&format!("_ex_r{rule_idx}_{name}")))
        })
        .collect();

    Ok(RulePlan {
        steps,
        nvars,
        index_needs,
        existentials,
        enc_atoms,
        enc_head: encode_atom(&rule.head, dict),
    })
}

/// Body order for a delta variant: the delta atom first, then greedily —
/// conditions/assignments/negations as soon as their variables are bound,
/// and among the remaining positive atoms the one with the most
/// bound-or-constant argument positions (most selective index lookup).
/// Without this, moving the delta atom to the front could place a join
/// atom before the `comp` atom that binds its key, recreating a cross
/// product.
fn delta_order(rule: &Rule, delta_item: usize) -> Vec<usize> {
    let nvars = rule.var_names.len();
    let mut bound = vec![false; nvars];
    let mut order = vec![delta_item];
    if let BodyItem::Pos(a) = &rule.body[delta_item] {
        for v in a.vars() {
            bound[v as usize] = true;
        }
    }
    let mut remaining: Vec<usize> = (0..rule.body.len()).filter(|&i| i != delta_item).collect();

    while !remaining.is_empty() {
        // Eagerly place ready non-atom items (keeping original order).
        if let Some(k) = remaining.iter().position(|&i| match &rule.body[i] {
            BodyItem::Cond(e) => {
                let mut vs = Vec::new();
                e.collect_vars(&mut vs);
                vs.iter().all(|&v| bound[v as usize])
            }
            BodyItem::Assign(_, e) => {
                let mut vs = Vec::new();
                e.collect_vars(&mut vs);
                vs.iter().all(|&v| bound[v as usize])
            }
            BodyItem::Neg(a) => a.vars().iter().all(|&v| bound[v as usize]),
            BodyItem::Pos(_) => false,
        }) {
            let i = remaining.remove(k);
            if let BodyItem::Assign(v, _) = &rule.body[i] {
                bound[*v as usize] = true;
            }
            order.push(i);
            continue;
        }
        // Otherwise the most selective positive atom. Bound *variable*
        // positions dominate (they are join keys); constant positions
        // count less (a constant like the graph component may match the
        // whole relation); ties resolve to the original order.
        let (k, _) = remaining
            .iter()
            .enumerate()
            .filter_map(|(k, &i)| match &rule.body[i] {
                BodyItem::Pos(a) => {
                    let bound_vars = a
                        .args
                        .iter()
                        .filter(|arg| matches!(arg, AtomArg::Var(v) if bound[*v as usize]))
                        .count();
                    let consts = a
                        .args
                        .iter()
                        .filter(|arg| matches!(arg, AtomArg::Const(_)))
                        .count();
                    Some((k, (bound_vars, consts)))
                }
                _ => None,
            })
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("unplaced non-atom item must have unbound vars from a future atom");
        let i = remaining.remove(k);
        if let BodyItem::Pos(a) = &rule.body[i] {
            for v in a.vars() {
                bound[v as usize] = true;
            }
        }
        order.push(i);
    }
    order
}

// ------------------------------------------------------------ evaluation

/// Stack buffer for index keys and negation probes: relations support at
/// most 64 columns (the [`Mask`] width), so no heap fallback is needed.
const MAX_COLS: usize = 64;

/// Minimum delta rows per partition job: batches smaller than this are
/// not worth a second worker's fixed cost (staging buffer, plan
/// resolution, pool dispatch).
const MIN_PARTITION_ROWS: usize = 512;

struct Ctx<'a> {
    symbols: &'a SymbolTable,
    dict: &'a TermDict,
    start: Instant,
    timeout: Option<Duration>,
    max_skolem_depth: usize,
    /// `SPARQLOG_TRACE` level (0 = off), read once per evaluation.
    trace: u8,
    /// The armed execution budget (see [`crate::govern`]).
    budget: &'a Budget,
    /// False when the budget is unlimited — every governed check then
    /// reduces to this single branch.
    governed: bool,
    /// Spill/Skolem terms interned when the evaluation started, the
    /// baseline for the dictionary-growth cap.
    dict_base: usize,
    /// Governed row counter: exact merged rows between passes; inflated
    /// with per-emission staged candidates during a pass while a row cap
    /// is armed (workers `fetch_add` concurrently, the sequential merge
    /// resyncs). Relaxed ordering suffices — pass boundaries are real
    /// synchronisation points and the cap check tolerates slack of one
    /// in-flight emission per worker.
    derived: AtomicUsize,
    /// True when the per-query profiler is armed
    /// ([`EvalOptions::profile`]) — jobs then record their wall time.
    profile: bool,
}

impl Ctx<'_> {
    /// The periodic cooperative check, called at batch granularity (every
    /// ~4096 join ticks, each round, each merge): legacy timeout first,
    /// then — only when a budget is armed — cancellation, deadline,
    /// dictionary growth and the row cap.
    fn check(&self) -> Result<(), EvalError> {
        if let Some(t) = self.timeout {
            if self.start.elapsed() > t {
                return Err(EvalError::Timeout);
            }
        }
        if !self.governed {
            return Ok(());
        }
        if let Some(token) = self.budget.cancel_token() {
            if token.is_cancelled() {
                return Err(self.abort(AbortReason::Cancelled));
            }
        }
        if let Some(deadline) = self.budget.deadline() {
            if Instant::now() >= deadline {
                return Err(self.abort(AbortReason::Deadline));
            }
        }
        if let Some(max) = self.budget.max_dict_growth() {
            if self.dict.interned_terms().saturating_sub(self.dict_base) > max {
                return Err(self.abort(AbortReason::DictGrowth));
            }
        }
        if let Some(cap) = self.budget.max_rows() {
            if self.derived.load(Ordering::Relaxed) > cap {
                return Err(self.abort(AbortReason::RowLimit));
            }
        }
        Ok(())
    }

    /// The derived-row cap, when armed. Jobs read this once per pass and
    /// count emissions only while it is `Some`, so ungoverned evaluations
    /// never touch the shared counter on the hot path.
    fn row_cap(&self) -> Option<usize> {
        if self.governed {
            self.budget.max_rows()
        } else {
            None
        }
    }

    /// Counts one accepted derivation against the row cap (the sequential
    /// paths: aggregates, program facts). The parallel emission paths
    /// inline the same logic against [`Ctx::row_cap`].
    fn note_derived(&self) -> Result<(), EvalError> {
        if let Some(cap) = self.row_cap() {
            if self.derived.fetch_add(1, Ordering::Relaxed) + 1 > cap {
                return Err(self.abort(AbortReason::RowLimit));
            }
        }
        Ok(())
    }

    fn abort(&self, reason: AbortReason) -> EvalError {
        EvalError::Aborted {
            reason,
            elapsed: self.start.elapsed(),
            rows_derived: self.derived.load(Ordering::Relaxed),
        }
    }
}

/// A scan step's hash index: borrowed from the relation's eager map, or
/// a shared lazily built one (kept alive by its `Arc` for the pass).
enum ScanIndex<'d> {
    Eager(&'d Index),
    Lazy(Arc<std::sync::OnceLock<Index>>),
}

/// A scan step's relation and hash index, resolved once per rule pass so
/// the probe loop never re-hashes the `(pred, mask)` pair per tuple.
struct ResolvedScan<'d> {
    rel: Option<&'d Relation>,
    index: Option<ScanIndex<'d>>,
}

impl ResolvedScan<'_> {
    #[inline]
    fn index(&self) -> Option<&Index> {
        match &self.index {
            Some(ScanIndex::Eager(ix)) => Some(ix),
            Some(ScanIndex::Lazy(cell)) => cell.get(),
            None => None,
        }
    }
}

/// Resolves every scan step of `plan` against the current snapshot.
/// Eager indexes win (lock-free, incrementally maintained); a planned
/// mask the snapshot did not build eagerly — a frozen base builds only
/// the masks live plans name — falls back to the relation's shared
/// lazily built index, initialised here, outside the probe loop.
fn resolve_scans<'d>(plan: &RulePlan, db: &'d Database) -> Vec<ResolvedScan<'d>> {
    plan.steps
        .iter()
        .map(|step| match step {
            Step::Scan { pred, mask, .. } => {
                let rel = db.relation(*pred);
                let index = rel.and_then(|r| {
                    if *mask == 0 {
                        return None;
                    }
                    match r.hash_index(*mask) {
                        Some(ix) => Some(ScanIndex::Eager(ix)),
                        None => r.shared_index(*mask).map(ScanIndex::Lazy),
                    }
                });
                ResolvedScan { rel, index }
            }
            _ => ResolvedScan {
                rel: None,
                index: None,
            },
        })
        .collect()
}

/// Evaluates a rule, appending instantiated head rows (and their hashes)
/// to the staging buffer. `delta` optionally restricts one body
/// occurrence to a row range of a columnar batch; `dedup_against` drops
/// rows already present in the head's snapshot at emission time (the
/// parallel pre-filter).
fn eval_rule(
    plan: &RulePlan,
    rule: &Rule,
    db: &Database,
    delta: Option<(usize, &ColumnBatch, usize, usize)>,
    ctx: &Ctx<'_>,
    dedup_against: Option<&Relation>,
    out: &mut Staging,
) -> Result<(), EvalError> {
    out.arity = plan.enc_head.args.len();
    let resolved = resolve_scans(plan, db);
    let mut ticks = 0u64;
    let r = 'done: {
        if let Some(d) = delta {
            // The workhorse shape of recursive rules — delta scan followed
            // by exactly one indexed probe (`tc(X,Z) :- Δtc(Y,Z),
            // edge(X,Y)`) — runs as a fused, non-recursive loop.
            if let Some(r) = eval_delta_probe(
                plan,
                rule,
                &resolved,
                d,
                ctx,
                dedup_against,
                out,
                &mut ticks,
            ) {
                break 'done r;
            }
        }
        let mut env: Vec<Option<TermId>> = vec![None; plan.nvars];
        let row_cap = ctx.row_cap();
        join(
            plan,
            &resolved,
            rule,
            db,
            delta,
            ctx,
            0,
            &mut env,
            &mut ticks,
            &mut |env: &[Option<TermId>], ctx: &Ctx<'_>| {
                // Row accounting only while a cap is armed: the ungoverned
                // emission path stays exactly as cheap as before the governor.
                if let Some(cap) = row_cap {
                    let before = out.count;
                    instantiate_head(plan, rule, env, ctx, dedup_against, out);
                    if out.count > before && ctx.derived.fetch_add(1, Ordering::Relaxed) + 1 > cap {
                        return Err(ctx.abort(AbortReason::RowLimit));
                    }
                } else {
                    instantiate_head(plan, rule, env, ctx, dedup_against, out);
                }
                Ok(())
            },
        )
    };
    if ctx.trace >= 2 {
        eprintln!("[eval]   join ticks: {ticks}");
    }
    // The local tick counter becomes the job's probe figure, summed into
    // [`EvalStats::probes`] by the merge — one store per job, not per
    // tick.
    out.ticks += ticks;
    r
}

/// The fused fast path for two-step delta plans: a tight loop over the
/// batch partition, one hash probe per row, head emission inline — no
/// recursion, no per-level dispatch. Returns `None` (fall back to the
/// general join) unless the plan is exactly `[Scan(delta),
/// Scan(indexed)]`: any filter, negation, assignment, further atom or a
/// missing index takes the general path.
#[allow(clippy::too_many_arguments)]
fn eval_delta_probe(
    plan: &RulePlan,
    rule: &Rule,
    resolved: &[ResolvedScan<'_>],
    (di, batch, lo, hi): (usize, &ColumnBatch, usize, usize),
    ctx: &Ctx<'_>,
    dedup_against: Option<&Relation>,
    out: &mut Staging,
    ticks: &mut u64,
) -> Option<Result<(), EvalError>> {
    let [Step::Scan { item_idx: i0, .. }, Step::Scan {
        item_idx: i1, mask, ..
    }] = &plan.steps[..]
    else {
        return None;
    };
    let (i0, i1, mask) = (*i0, *i1, *mask);
    if i0 != di || i1 == di || mask == 0 {
        return None;
    }
    let atom0 = plan.enc_atoms[i0]
        .as_ref()
        .expect("scan step on positive item");
    let atom1 = plan.enc_atoms[i1]
        .as_ref()
        .expect("scan step on positive item");
    let (rel, index) = (resolved[1].rel?, resolved[1].index()?);
    let mut env: Vec<Option<TermId>> = vec![None; plan.nvars];
    let row_cap = ctx.row_cap();
    for r in lo..hi {
        *ticks += 1;
        if *ticks & 0xFFF == 0 {
            if let Err(e) = ctx.check() {
                return Some(Err(e));
            }
        }
        let Some(undo0) = bind_atom_cols(atom0, batch, r, &mut env) else {
            continue;
        };
        let mut key = [TermId::NULL; MAX_COLS];
        let mut klen = 0usize;
        let mut ok = true;
        for (i, arg) in atom1.args.iter().enumerate() {
            if mask & (1 << i) != 0 {
                key[klen] = match arg {
                    EArg::Id(id) => *id,
                    EArg::Var(v) => match env[*v as usize] {
                        Some(id) => id,
                        None => {
                            ok = false;
                            break;
                        }
                    },
                };
                klen += 1;
            }
        }
        if !ok {
            unbind_atom(atom0, undo0, &mut env);
            return Some(Err(EvalError::Unsafe("unbound key var".into())));
        }
        if let Some(bucket) = index.get(&row_hash(&key[..klen])) {
            for &i in bucket {
                // Tick per bucket element, matching the general join's
                // per-call granularity: a huge bucket must still hit the
                // timeout check every 4096 emissions.
                *ticks += 1;
                if *ticks & 0xFFF == 0 {
                    if let Err(e) = ctx.check() {
                        return Some(Err(e));
                    }
                }
                if let Some(undo1) = bind_atom(atom1, rel.row(i), &mut env) {
                    if let Some(cap) = row_cap {
                        let before = out.count;
                        instantiate_head(plan, rule, &env, ctx, dedup_against, out);
                        unbind_atom(atom1, undo1, &mut env);
                        if out.count > before
                            && ctx.derived.fetch_add(1, Ordering::Relaxed) + 1 > cap
                        {
                            return Some(Err(ctx.abort(AbortReason::RowLimit)));
                        }
                    } else {
                        instantiate_head(plan, rule, &env, ctx, dedup_against, out);
                        unbind_atom(atom1, undo1, &mut env);
                    }
                }
            }
        }
        unbind_atom(atom0, undo0, &mut env);
    }
    Some(Ok(()))
}

/// Like [`eval_rule`] but yields complete environments (for aggregates).
fn eval_rule_envs(
    plan: &RulePlan,
    rule: &Rule,
    db: &Database,
    ctx: &Ctx<'_>,
    out: &mut Vec<Vec<Option<TermId>>>,
) -> Result<(), EvalError> {
    let resolved = resolve_scans(plan, db);
    let mut env: Vec<Option<TermId>> = vec![None; plan.nvars];
    let mut ticks = 0u64;
    join(
        plan,
        &resolved,
        rule,
        db,
        None,
        ctx,
        0,
        &mut env,
        &mut ticks,
        &mut |env: &[Option<TermId>], _: &Ctx<'_>| {
            out.push(env.to_vec());
            Ok(())
        },
    )
}

/// The recursive join over the plan's steps: batch-driven at the delta
/// occurrence, hash-index probes (against the incrementally maintained
/// build side) elsewhere. Generic over the emit callback so the head
/// instantiation inlines into the innermost loop.
#[allow(clippy::too_many_arguments)]
fn join<F>(
    plan: &RulePlan,
    resolved: &[ResolvedScan<'_>],
    rule: &Rule,
    db: &Database,
    delta: Option<(usize, &ColumnBatch, usize, usize)>,
    ctx: &Ctx<'_>,
    step_idx: usize,
    env: &mut Vec<Option<TermId>>,
    ticks: &mut u64,
    emit: &mut F,
) -> Result<(), EvalError>
where
    F: FnMut(&[Option<TermId>], &Ctx<'_>) -> Result<(), EvalError>,
{
    *ticks += 1;
    if *ticks & 0xFFF == 0 {
        ctx.check()?;
    }
    let Some(step) = plan.steps.get(step_idx) else {
        return emit(env, ctx);
    };
    match step {
        Step::Scan { item_idx, mask, .. } => {
            let atom = plan.enc_atoms[*item_idx]
                .as_ref()
                .expect("scan step on non-positive item");
            // Delta override for this occurrence: a tight loop over the
            // batch partition's columns.
            if let Some((di, batch, lo, hi)) = delta {
                if di == *item_idx {
                    for r in lo..hi {
                        if let Some(undo_mask) = bind_atom_cols(atom, batch, r, env) {
                            join(
                                plan,
                                resolved,
                                rule,
                                db,
                                delta,
                                ctx,
                                step_idx + 1,
                                env,
                                ticks,
                                emit,
                            )?;
                            unbind_atom(atom, undo_mask, env);
                        }
                    }
                    return Ok(());
                }
            }
            let rs = &resolved[step_idx];
            let Some(rel) = rs.rel else { return Ok(()) };
            match rs.index() {
                Some(index) if *mask != 0 => {
                    // Hash probe on the bound positions; the key lives in
                    // a stack buffer — the hot loop does not allocate.
                    // Bucket rows that merely collide on the 64-bit key
                    // hash fail `bind_atom` below, so results stay exact.
                    let mut key = [TermId::NULL; MAX_COLS];
                    let mut klen = 0usize;
                    for (i, arg) in atom.args.iter().enumerate() {
                        if mask & (1 << i) != 0 {
                            key[klen] = match arg {
                                EArg::Id(id) => *id,
                                EArg::Var(v) => env[*v as usize]
                                    .ok_or_else(|| EvalError::Unsafe("unbound key var".into()))?,
                            };
                            klen += 1;
                        }
                    }
                    if let Some(bucket) = index.get(&row_hash(&key[..klen])) {
                        for &i in bucket {
                            let t = rel.row(i);
                            if let Some(undo_mask) = bind_atom(atom, t, env) {
                                join(
                                    plan,
                                    resolved,
                                    rule,
                                    db,
                                    delta,
                                    ctx,
                                    step_idx + 1,
                                    env,
                                    ticks,
                                    emit,
                                )?;
                                unbind_atom(atom, undo_mask, env);
                            }
                        }
                    }
                }
                _ => {
                    // Full scan over the flat storage (borrowed rows — no
                    // clones, the ids are plain u64s). Also the fallback
                    // for an unresolved index: `bind_atom` verifies every
                    // bound position, so correctness never depends on the
                    // index existing.
                    for i in 0..rel.len() as u32 {
                        let t = rel.row(i);
                        if let Some(undo_mask) = bind_atom(atom, t, env) {
                            join(
                                plan,
                                resolved,
                                rule,
                                db,
                                delta,
                                ctx,
                                step_idx + 1,
                                env,
                                ticks,
                                emit,
                            )?;
                            unbind_atom(atom, undo_mask, env);
                        }
                    }
                }
            }
            Ok(())
        }
        Step::NegCheck { item_idx, pred } => {
            let atom = plan.enc_atoms[*item_idx]
                .as_ref()
                .expect("neg step on non-negated item");
            let mut tuple = [TermId::NULL; MAX_COLS];
            for (i, arg) in atom.args.iter().enumerate() {
                tuple[i] = match arg {
                    EArg::Id(id) => *id,
                    EArg::Var(v) => env[*v as usize]
                        .ok_or_else(|| EvalError::Unsafe("unbound neg var".into()))?,
                };
            }
            let present = db
                .relation(*pred)
                .is_some_and(|r| r.contains(&tuple[..atom.args.len()]));
            if !present {
                join(
                    plan,
                    resolved,
                    rule,
                    db,
                    delta,
                    ctx,
                    step_idx + 1,
                    env,
                    ticks,
                    emit,
                )?;
            }
            Ok(())
        }
        Step::Filter { item_idx } => {
            let expr = match &rule.body[*item_idx] {
                BodyItem::Cond(e) => e,
                _ => unreachable!("filter step on non-condition item"),
            };
            if expr.eval_bool_ids(env, ctx.dict, ctx.symbols) {
                join(
                    plan,
                    resolved,
                    rule,
                    db,
                    delta,
                    ctx,
                    step_idx + 1,
                    env,
                    ticks,
                    emit,
                )?;
            }
            Ok(())
        }
        Step::Bind { item_idx, var } => {
            let expr = match &rule.body[*item_idx] {
                BodyItem::Assign(_, e) => e,
                _ => unreachable!("bind step on non-assignment item"),
            };
            if let Some(v) = expr.eval_id(env, ctx.dict, ctx.symbols) {
                let prev = env[*var as usize].take();
                // An assignment to an already-bound variable acts as an
                // equality constraint (used by `D = "default"` style items
                // where D may be pre-bound). Encoding is canonical, so id
                // equality is term equality; differing ids may still be
                // value-equal under numeric coercion, so fall back to the
                // decoded comparison.
                let ok = match prev {
                    Some(p) => {
                        p == v
                            || crate::expr::value_eq(
                                &ctx.dict.decode(p),
                                &ctx.dict.decode(v),
                                ctx.symbols,
                            )
                    }
                    None => true,
                };
                if ok {
                    env[*var as usize] = Some(v);
                    join(
                        plan,
                        resolved,
                        rule,
                        db,
                        delta,
                        ctx,
                        step_idx + 1,
                        env,
                        ticks,
                        emit,
                    )?;
                }
                env[*var as usize] = prev;
            }
            Ok(())
        }
    }
}

/// Binds an atom's variables against a tuple. Returns the mask of argument
/// positions whose variables were *newly* bound (to be undone by
/// [`unbind_atom`] after the recursive call), or `None` on mismatch (in
/// which case any partial bindings have already been rolled back).
fn bind_atom(atom: &EncAtom, tuple: &[TermId], env: &mut [Option<TermId>]) -> Option<u64> {
    if atom.args.len() != tuple.len() {
        return None;
    }
    let mut bound_here: u64 = 0;
    for (i, arg) in atom.args.iter().enumerate() {
        match arg {
            EArg::Id(id) => {
                if *id != tuple[i] {
                    unbind_atom(atom, bound_here, env);
                    return None;
                }
            }
            EArg::Var(v) => {
                let slot = &mut env[*v as usize];
                match slot {
                    Some(existing) => {
                        if *existing != tuple[i] {
                            unbind_atom(atom, bound_here, env);
                            return None;
                        }
                    }
                    None => {
                        *slot = Some(tuple[i]);
                        bound_here |= 1 << i;
                    }
                }
            }
        }
    }
    Some(bound_here)
}

/// [`bind_atom`] against row `r` of a columnar batch: binds the atom's
/// variables from the batch's columns without materialising the row.
fn bind_atom_cols(
    atom: &EncAtom,
    batch: &ColumnBatch,
    r: usize,
    env: &mut [Option<TermId>],
) -> Option<u64> {
    let cols = batch.cols();
    if atom.args.len() != cols.len() {
        return None;
    }
    let mut bound_here: u64 = 0;
    for (i, arg) in atom.args.iter().enumerate() {
        let id = cols[i][r];
        match arg {
            EArg::Id(c) => {
                if *c != id {
                    unbind_atom(atom, bound_here, env);
                    return None;
                }
            }
            EArg::Var(v) => {
                let slot = &mut env[*v as usize];
                match slot {
                    Some(existing) => {
                        if *existing != id {
                            unbind_atom(atom, bound_here, env);
                            return None;
                        }
                    }
                    None => {
                        *slot = Some(id);
                        bound_here |= 1 << i;
                    }
                }
            }
        }
    }
    Some(bound_here)
}

/// Clears the variables bound by a preceding [`bind_atom`] call.
fn unbind_atom(atom: &EncAtom, bound_here: u64, env: &mut [Option<TermId>]) {
    for (i, arg) in atom.args.iter().enumerate() {
        if bound_here & (1 << i) != 0 {
            if let EArg::Var(v) = arg {
                env[*v as usize] = None;
            }
        }
    }
}

/// Instantiates the head atom under `env` directly into the staging
/// buffer, Skolemising existential variables over the frontier. Rolls the
/// emission back when the Skolem-depth bound is exceeded (chase
/// termination — an O(1) check: depths are precomputed at interning
/// time). The row's dedup hash is computed here, once, and carried to the
/// merge; with `dedup_against` (the parallel pre-filter) rows already in
/// the head's snapshot are dropped before they reach the sequential
/// merge.
fn instantiate_head(
    plan: &RulePlan,
    rule: &Rule,
    env: &[Option<TermId>],
    ctx: &Ctx<'_>,
    dedup_against: Option<&Relation>,
    out: &mut Staging,
) {
    // Existential Skolemisation: functor over the frontier values,
    // interned by identity (no structural Skolem terms are built).
    let mut ex_values: FxHashMap<VarId, TermId> = FxHashMap::default();
    if !plan.existentials.is_empty() {
        let frontier: Vec<TermId> = rule
            .frontier_vars()
            .into_iter()
            .filter_map(|v| env[v as usize])
            .collect();
        for (v, functor) in &plan.existentials {
            ex_values.insert(*v, ctx.dict.skolem(*functor, &frontier));
        }
    }
    let start = out.ids.len();
    for arg in &plan.enc_head.args {
        let id = match arg {
            EArg::Id(id) => *id,
            EArg::Var(v) => match env[*v as usize] {
                Some(id) => id,
                None => match ex_values.get(v) {
                    Some(&id) => id,
                    None => {
                        out.ids.truncate(start);
                        return;
                    }
                },
            },
        };
        if id.is_skolem() && ctx.dict.skolem_depth(id) > ctx.max_skolem_depth {
            out.ids.truncate(start);
            return;
        }
        out.ids.push(id);
    }
    let hash = row_hash(&out.ids[start..]);
    if let Some(rel) = dedup_against {
        if rel.contains_hashed(&out.ids[start..], hash) {
            out.ids.truncate(start);
            return;
        }
    }
    out.hashes.push(hash);
    out.count += 1;
}

// ------------------------------------------------------------ aggregates

fn aggregate(
    rule: &Rule,
    matches: Vec<Vec<Option<TermId>>>,
    ctx: &Ctx<'_>,
) -> Result<Vec<Vec<TermId>>, EvalError> {
    let symbols = ctx.symbols;
    let dict = ctx.dict;
    let spec = rule.aggregate.as_ref().expect("aggregate rule");
    // Group key: the head args except the result variable (as encoded
    // ids); values: the raw aggregate inputs per group, decoded — the
    // aggregate functions are an arithmetic boundary (kept individually
    // so AVG and DISTINCT can be computed exactly).
    let mut inputs: FxHashMap<Vec<TermId>, Vec<Option<Const>>> = FxHashMap::default();

    // Aggregate evaluation runs sequentially after the fixpoint and can
    // dominate on huge group counts: keep the governor's batch-granular
    // checks through both the grouping and the reduction loops.
    let mut ticks = 0u64;
    for env in &matches {
        ticks += 1;
        if ticks & 0xFFF == 0 {
            ctx.check()?;
        }
        let mut key = Vec::new();
        for arg in &rule.head.args {
            match arg {
                AtomArg::Const(c) => key.push(dict.encode(c)),
                AtomArg::Var(v) if *v == spec.result_var => {}
                AtomArg::Var(v) => key.push(env[*v as usize].unwrap_or(TermId::NULL)),
            }
        }
        let input = match &spec.input {
            None => Some(Const::Int(1)),
            Some(e) => e.eval_decoded(env, dict, symbols),
        };
        inputs.entry(key).or_default().push(input);
    }

    let mut out = Vec::new();
    for (key, vals) in inputs {
        ticks += 1;
        if ticks & 0xFFF == 0 {
            ctx.check()?;
        }
        let mut vals: Vec<Const> = vals.into_iter().flatten().collect();
        if spec.distinct {
            let mut seen = FxHashSet::default();
            vals.retain(|v| seen.insert(v.clone()));
        }
        let result = match spec.func {
            AggFunc::Count => Const::Int(vals.len() as i64),
            AggFunc::Sum => {
                let mut acc = 0f64;
                let mut all_int = true;
                for v in &vals {
                    match v.as_f64(symbols) {
                        Some(x) => {
                            if v.as_i64(symbols).is_none() {
                                all_int = false;
                            }
                            acc += x;
                        }
                        None => continue,
                    }
                }
                if all_int {
                    Const::Int(acc as i64)
                } else {
                    Const::Float(OrdF64(acc))
                }
            }
            AggFunc::Min => {
                let mut best: Option<Const> = None;
                for v in vals {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            if order_cmp(&v, &b, symbols) == std::cmp::Ordering::Less {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                best.unwrap_or(Const::Null)
            }
            AggFunc::Max => {
                let mut best: Option<Const> = None;
                for v in vals {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            if order_cmp(&v, &b, symbols) == std::cmp::Ordering::Greater {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                best.unwrap_or(Const::Null)
            }
            AggFunc::Avg => {
                let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_f64(symbols)).collect();
                if nums.is_empty() {
                    Const::Int(0)
                } else {
                    Const::Float(OrdF64(nums.iter().sum::<f64>() / nums.len() as f64))
                }
            }
        };
        let result_id = dict.encode(&result);
        // Rebuild the head tuple with the result plugged in.
        let mut tuple = Vec::with_capacity(rule.head.args.len());
        let mut key_iter = key.into_iter();
        for arg in &rule.head.args {
            match arg {
                AtomArg::Const(c) => {
                    tuple.push(dict.encode(c));
                    let _ = key_iter.next();
                }
                AtomArg::Var(v) if *v == spec.result_var => tuple.push(result_id),
                AtomArg::Var(_) => tuple.push(key_iter.next().unwrap_or(TermId::NULL)),
            }
        }
        out.push(tuple);
    }
    Ok(out)
}
