//! The fact store: per-predicate relations over dictionary-encoded
//! tuples, with hash indexes built on demand per bound-position mask.
//!
//! Tuples are flat runs of fixed-width [`TermId`]s in one contiguous
//! buffer per relation — no per-tuple allocation, no pointer chasing in
//! the join loop. Deduplication and index probes hash raw `u64`s.
//! [`Const`]s cross the boundary only in [`Database::add_fact`] (encode,
//! at load time) and in the evaluator's output collection (decode).

use std::hash::Hasher;
use std::ops::Deref;
use std::sync::{Arc, RwLock};

use crate::fxhash::{FxHashMap, FxHasher};
use crate::symbols::{Sym, SymbolTable};
use crate::value::{Const, TermDict, TermId};

/// A position mask: bit `i` set means argument position `i` is part of the
/// index key. Relations support up to 64 columns (far beyond any predicate
/// the translation generates).
pub type Mask = u64;

/// Extracts the key columns selected by `mask` from a tuple.
pub fn project(tuple: &[TermId], mask: Mask) -> Vec<TermId> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    for (i, &c) in tuple.iter().enumerate() {
        if mask & (1 << i) != 0 {
            key.push(c);
        }
    }
    key
}

fn row_hash(row: &[TermId]) -> u64 {
    let mut h = FxHasher::default();
    for &id in row {
        h.write_u64(id.raw());
    }
    h.finish()
}

type Index = FxHashMap<Box<[TermId]>, Vec<u32>>;

/// The result of an index probe: a borrowed id slice on the planned fast
/// path, an owned copy when the lazily auto-built index served the miss.
pub enum Matches<'a> {
    Borrowed(&'a [u32]),
    Owned(Vec<u32>),
}

impl Deref for Matches<'_> {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        match self {
            Matches::Borrowed(s) => s,
            Matches::Owned(v) => v,
        }
    }
}

/// A relation: a deduplicated, insertion-ordered set of fixed-arity
/// encoded tuples with hash indexes built on demand per bound-position
/// mask and maintained incrementally on insert.
#[derive(Debug, Default)]
pub struct Relation {
    /// Tuple width; fixed by the first insert.
    arity: usize,
    /// Number of tuples.
    len: usize,
    /// Flat tuple storage (`len * arity` ids).
    rows: Vec<TermId>,
    /// Dedup: tuple hash → first tuple index with that hash. Hash
    /// collisions between *distinct* rows (vanishingly rare with 64-bit
    /// hashes) chain into `seen_overflow`; equality is always confirmed
    /// against the actual rows. No per-tuple allocation.
    seen: FxHashMap<u64, u32>,
    seen_overflow: FxHashMap<u64, Vec<u32>>,
    /// Eager indexes, pre-built by the evaluator's planner.
    indexes: FxHashMap<Mask, Index>,
    /// Lazily auto-built indexes serving unplanned lookups (interior
    /// mutability: [`Relation::lookup`] takes `&self`).
    lazy: RwLock<FxHashMap<Mask, Index>>,
}

impl Relation {
    pub fn new() -> Self {
        Relation::default()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tuple width (0 until the first insert).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Inserts a tuple; returns `false` if it was already present.
    ///
    /// Panics if the arity differs from previously inserted tuples (a
    /// predicate's arity is fixed — mixed arities would be a programming
    /// error in the translator or a malformed program).
    pub fn insert(&mut self, tuple: &[TermId]) -> bool {
        if self.len == 0 && self.rows.is_empty() {
            self.arity = tuple.len();
        } else {
            assert_eq!(
                tuple.len(),
                self.arity,
                "arity mismatch: relation holds {}-tuples",
                self.arity
            );
        }
        let hash = row_hash(tuple);
        let idx = self.len as u32;
        match self.seen.entry(hash) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(idx);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if row_at(&self.rows, self.arity, *e.get()) == tuple {
                    return false;
                }
                let chain = self.seen_overflow.entry(hash).or_default();
                if chain
                    .iter()
                    .any(|&i| row_at(&self.rows, self.arity, i) == tuple)
                {
                    return false;
                }
                chain.push(idx);
            }
        }
        self.rows.extend_from_slice(tuple);
        self.len += 1;
        for (&mask, index) in self.indexes.iter_mut() {
            index_add(index, tuple, mask, idx);
        }
        // `&mut self` means no other thread holds the lock — get_mut is
        // lock-free. Lazily built indexes stay consistent across inserts.
        let lazy = self.lazy.get_mut().unwrap();
        for (&mask, index) in lazy.iter_mut() {
            index_add(index, tuple, mask, idx);
        }
        true
    }

    /// Membership check.
    pub fn contains(&self, tuple: &[TermId]) -> bool {
        if tuple.len() != self.arity {
            return false;
        }
        let hash = row_hash(tuple);
        let Some(&first) = self.seen.get(&hash) else { return false };
        if row_at(&self.rows, self.arity, first) == tuple {
            return true;
        }
        self.seen_overflow.get(&hash).is_some_and(|chain| {
            chain
                .iter()
                .any(|&i| row_at(&self.rows, self.arity, i) == tuple)
        })
    }

    /// The tuple at internal index `idx`.
    pub fn row(&self, idx: u32) -> &[TermId] {
        row_at(&self.rows, self.arity, idx)
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[TermId]> + '_ {
        (0..self.len as u32).map(move |i| self.row(i))
    }

    /// Builds the eager index for `mask` if missing (promoting a lazily
    /// built one when available instead of rebuilding).
    pub fn ensure_index(&mut self, mask: Mask) {
        if mask == 0 || self.indexes.contains_key(&mask) {
            return;
        }
        if let Some(ready) = self.lazy.get_mut().unwrap().remove(&mask) {
            self.indexes.insert(mask, ready);
            return;
        }
        self.indexes.insert(mask, self.build_index(mask));
    }

    fn build_index(&self, mask: Mask) -> Index {
        let mut index = Index::default();
        for (i, t) in self.iter().enumerate() {
            index_add(&mut index, t, mask, i as u32);
        }
        index
    }

    /// Looks up tuple indices matching `key` under `mask`.
    ///
    /// The evaluator's planner pre-builds its indexes with
    /// [`Relation::ensure_index`], so its probes hit the borrowed fast
    /// path. A lookup on a mask that was never planned auto-builds the
    /// index on first miss (memoised, maintained on insert) instead of
    /// panicking; those probes return an owned copy of the matching ids.
    pub fn lookup(&self, mask: Mask, key: &[TermId]) -> Matches<'_> {
        static EMPTY: Vec<u32> = Vec::new();
        if let Some(index) = self.indexes.get(&mask) {
            return Matches::Borrowed(index.get(key).unwrap_or(&EMPTY));
        }
        if self.len == 0 {
            return Matches::Borrowed(&EMPTY);
        }
        {
            let lazy = self.lazy.read().unwrap();
            if let Some(index) = lazy.get(&mask) {
                return Matches::Owned(index.get(key).cloned().unwrap_or_default());
            }
        }
        let mut w = self.lazy.write().unwrap();
        let index = w.entry(mask).or_insert_with(|| self.build_index(mask));
        Matches::Owned(index.get(key).cloned().unwrap_or_default())
    }
}

#[inline]
fn row_at(rows: &[TermId], arity: usize, idx: u32) -> &[TermId] {
    let start = idx as usize * arity;
    &rows[start..start + arity]
}

/// Adds a tuple to an index without allocating on the hot path: the
/// projected key lives in a stack buffer and is boxed only when it is a
/// new distinct key.
fn index_add(index: &mut Index, tuple: &[TermId], mask: Mask, idx: u32) {
    let mut key = [TermId::NULL; 64];
    let mut klen = 0usize;
    for (i, &c) in tuple.iter().enumerate() {
        if mask & (1 << i) != 0 {
            key[klen] = c;
            klen += 1;
        }
    }
    if let Some(ids) = index.get_mut(&key[..klen]) {
        ids.push(idx);
    } else {
        index.insert(key[..klen].into(), vec![idx]);
    }
}

/// A database: the symbol table, the term dictionary and one
/// [`Relation`] per predicate.
pub struct Database {
    symbols: Arc<SymbolTable>,
    dict: Arc<TermDict>,
    relations: FxHashMap<Sym, Relation>,
}

impl Database {
    /// Creates an empty database with a fresh symbol table.
    pub fn new() -> Self {
        Database::with_symbols(SymbolTable::new())
    }

    /// Creates an empty database sharing an existing symbol table.
    pub fn with_symbols(symbols: Arc<SymbolTable>) -> Self {
        Database {
            symbols,
            dict: TermDict::new(),
            relations: FxHashMap::default(),
        }
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// The shared term dictionary.
    pub fn dict(&self) -> &Arc<TermDict> {
        &self.dict
    }

    /// Adds a fact given as boundary constants: encodes once, then
    /// inserts. Returns `false` on duplicates.
    pub fn add_fact(&mut self, pred: Sym, tuple: Vec<Const>) -> bool {
        let encoded: Vec<TermId> = tuple.iter().map(|c| self.dict.encode(c)).collect();
        self.add_fact_ids(pred, &encoded)
    }

    /// Adds an already-encoded fact (the evaluator's internal path).
    pub fn add_fact_ids(&mut self, pred: Sym, tuple: &[TermId]) -> bool {
        self.relations.entry(pred).or_default().insert(tuple)
    }

    /// Convenience: interns the predicate name and adds the fact.
    pub fn add_fact_str(&mut self, pred: &str, tuple: Vec<Const>) -> bool {
        let p = self.symbols.intern(pred);
        self.add_fact(p, tuple)
    }

    /// The relation for `pred`, if any facts exist.
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Mutable access, creating the relation if absent.
    pub fn relation_mut(&mut self, pred: Sym) -> &mut Relation {
        self.relations.entry(pred).or_default()
    }

    /// Iterates over `(predicate, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (Sym, &Relation)> + '_ {
        self.relations.iter().map(|(&p, r)| (p, r))
    }

    /// Decodes an encoded tuple back to boundary constants.
    pub fn decode_tuple(&self, tuple: &[TermId]) -> Vec<Const> {
        tuple.iter().map(|&id| self.dict.decode(id)).collect()
    }

    /// Total number of facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(dict: &TermDict, vals: &[i64]) -> Vec<TermId> {
        vals.iter().map(|&i| dict.encode(&Const::Int(i))).collect()
    }

    #[test]
    fn insert_dedupes() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        assert!(r.insert(&ids(&dict, &[1, 2])));
        assert!(!r.insert(&ids(&dict, &[1, 2])));
        assert!(r.insert(&ids(&dict, &[2, 1])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&ids(&dict, &[1, 2])));
        assert!(!r.contains(&ids(&dict, &[3, 3])));
    }

    #[test]
    fn index_lookup() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        r.insert(&ids(&dict, &[1, 10]));
        r.insert(&ids(&dict, &[1, 20]));
        r.insert(&ids(&dict, &[2, 30]));
        r.ensure_index(0b01);
        assert_eq!(r.lookup(0b01, &ids(&dict, &[1])).len(), 2);
        assert_eq!(r.lookup(0b01, &ids(&dict, &[2])).len(), 1);
        assert_eq!(r.lookup(0b01, &ids(&dict, &[9])).len(), 0);
    }

    #[test]
    fn index_updated_on_insert() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        r.insert(&ids(&dict, &[1, 10]));
        r.ensure_index(0b10);
        r.insert(&ids(&dict, &[2, 10]));
        assert_eq!(r.lookup(0b10, &ids(&dict, &[10])).len(), 2);
    }

    #[test]
    fn composite_index() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        r.insert(&ids(&dict, &[1, 2, 3]));
        r.insert(&ids(&dict, &[1, 2, 4]));
        r.insert(&ids(&dict, &[1, 9, 3]));
        r.ensure_index(0b011);
        assert_eq!(r.lookup(0b011, &ids(&dict, &[1, 2])).len(), 2);
        r.ensure_index(0b101);
        assert_eq!(r.lookup(0b101, &ids(&dict, &[1, 3])).len(), 2);
    }

    #[test]
    fn lookup_on_empty_relation_without_index() {
        let dict = TermDict::new();
        let r = Relation::new();
        assert!(r.lookup(0b1, &ids(&dict, &[1])).is_empty());
    }

    #[test]
    fn lookup_on_unbuilt_index_autobuilds() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        r.insert(&ids(&dict, &[1, 10]));
        r.insert(&ids(&dict, &[1, 20]));
        // No ensure_index: the first probe builds the index lazily.
        assert_eq!(r.lookup(0b1, &ids(&dict, &[1])).len(), 2);
        // The auto-built index is maintained on subsequent inserts.
        r.insert(&ids(&dict, &[1, 30]));
        assert_eq!(r.lookup(0b1, &ids(&dict, &[1])).len(), 3);
        // ensure_index promotes it to the eager fast path.
        r.ensure_index(0b1);
        assert!(matches!(
            r.lookup(0b1, &ids(&dict, &[1])),
            Matches::Borrowed(s) if s.len() == 3
        ));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mixed_arity_insert_panics() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        r.insert(&ids(&dict, &[1, 2]));
        r.insert(&ids(&dict, &[1]));
    }

    #[test]
    fn database_basics() {
        let mut db = Database::new();
        assert!(db.add_fact_str("p", vec![Const::Int(1)]));
        assert!(!db.add_fact_str("p", vec![Const::Int(1)]));
        db.add_fact_str("q", vec![Const::Int(1), Const::Int(2)]);
        assert_eq!(db.fact_count(), 2);
        let p = db.symbols().get("p").unwrap();
        assert_eq!(db.relation(p).unwrap().len(), 1);
        assert!(db.relation(db.symbols().intern("zzz")).is_none());
    }

    #[test]
    fn encode_decode_roundtrip_through_db() {
        let mut db = Database::new();
        let tuple = vec![
            Const::Int(1),
            Const::Str(db.symbols().intern("x")),
            Const::Null,
        ];
        db.add_fact_str("p", tuple.clone());
        let p = db.symbols().get("p").unwrap();
        let rel = db.relation(p).unwrap();
        let row: Vec<TermId> = rel.iter().next().unwrap().to_vec();
        assert_eq!(db.decode_tuple(&row), tuple);
    }

    #[test]
    fn project_mask() {
        let dict = TermDict::new();
        let t = ids(&dict, &[1, 2, 3]);
        assert_eq!(project(&t, 0b101), vec![t[0], t[2]]);
        assert_eq!(project(&t, 0), Vec::<TermId>::new());
        assert_eq!(project(&t, 0b111), t);
    }
}
