//! The fact store: per-predicate relations over dictionary-encoded
//! tuples, with hash indexes built on demand per bound-position mask.
//!
//! Tuples are flat runs of fixed-width [`TermId`]s in one contiguous
//! buffer per relation — no per-tuple allocation, no pointer chasing in
//! the join loop. Deduplication and index probes hash raw `u64`s.
//! [`Const`]s cross the boundary only in [`Database::add_fact`] /
//! [`Database::load_rows`] (encode, at load time) and in the evaluator's
//! output collection (decode).
//!
//! This module also hosts the batch types of the batched executor:
//! [`ColumnBatch`] (columnar semi-naive deltas) and [`Staging`]
//! (per-worker output buffers carrying precomputed row hashes, merged
//! through [`Relation::insert_hashed`]).

use std::hash::Hasher;
use std::ops::Deref;
use std::sync::{Arc, OnceLock, RwLock};

use crate::fxhash::{FxHashMap, FxHashSet, FxHasher, PrehashedMap};
use crate::symbols::{Sym, SymbolTable};
use crate::value::{Const, TermDict, TermId};

/// A position mask: bit `i` set means argument position `i` is part of the
/// index key. Relations support up to 64 columns (far beyond any predicate
/// the translation generates).
pub type Mask = u64;

/// Extracts the key columns selected by `mask` from a tuple.
pub fn project(tuple: &[TermId], mask: Mask) -> Vec<TermId> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    for (i, &c) in tuple.iter().enumerate() {
        if mask & (1 << i) != 0 {
            key.push(c);
        }
    }
    key
}

/// Finalizes an FxHash accumulator for use as a [`PrehashedMap`] key.
/// FxHash's last step is a multiply, which leaves the low bits weakly
/// mixed — and an identity-keyed table indexes buckets by exactly those
/// bits. One xor-shift-multiply round (the SplitMix64 tail) fixes that
/// for ~2 instructions.
#[inline]
fn mix(h: u64) -> u64 {
    let h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Hashes a full row of ids (the dedup key).
#[inline]
pub fn row_hash(row: &[TermId]) -> u64 {
    let mut h = FxHasher::default();
    for &id in row {
        h.write_u64(id.raw());
    }
    mix(h.finish())
}

/// Hashes the key columns of `tuple` selected by `mask`, without
/// materialising the projected key.
#[inline]
pub(crate) fn masked_hash(tuple: &[TermId], mask: Mask) -> u64 {
    let mut h = FxHasher::default();
    let mut m = mask;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        h.write_u64(tuple[i].raw());
        m &= m - 1;
    }
    mix(h.finish())
}

/// A hash index: 64-bit key hash → row indices whose key columns hash to
/// it. Distinct keys colliding on the hash simply share a bucket; probes
/// verify candidate rows against the actual key columns (the evaluator's
/// `bind_atom` re-checks every bound position anyway), so collisions cost
/// a wasted comparison, never a wrong result. Compared to boxed
/// `[TermId]` keys this removes the per-distinct-key allocation and makes
/// both build and probe a single integer hash — which the identity-keyed
/// table then uses verbatim.
pub(crate) type Index = PrehashedMap<Vec<u32>>;

/// The result of an index probe: a borrowed id slice on the planned fast
/// path, an owned copy when the lazily auto-built index served the miss.
pub enum Matches<'a> {
    /// The planned fast path: the index bucket, borrowed in full.
    Borrowed(&'a [u32]),
    /// A filtered copy (lazy auto-built index, or a rare hash collision).
    Owned(Vec<u32>),
}

impl Deref for Matches<'_> {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        match self {
            Matches::Borrowed(s) => s,
            Matches::Owned(v) => v,
        }
    }
}

/// A relation: a deduplicated, insertion-ordered set of fixed-arity
/// encoded tuples with hash indexes built on demand per bound-position
/// mask and maintained incrementally on insert.
///
/// These incrementally maintained per-mask indexes are the *build side*
/// of the executor's hash joins: built once (when the planner first needs
/// the mask) and then kept current on every insert, rather than rebuilt
/// per semi-naive round. Probes drive from the delta batch.
#[derive(Debug, Default)]
pub struct Relation {
    /// Tuple width; fixed by the first insert.
    arity: usize,
    /// Number of tuples.
    len: usize,
    /// Flat tuple storage (`len * arity` ids).
    rows: Vec<TermId>,
    /// Dedup: tuple hash → first tuple index with that hash. Hash
    /// collisions between *distinct* rows (vanishingly rare with 64-bit
    /// hashes) chain into `seen_overflow`; equality is always confirmed
    /// against the actual rows. No per-tuple allocation, and no
    /// re-hashing: the precomputed row hash is the key.
    seen: PrehashedMap<u32>,
    seen_overflow: PrehashedMap<Vec<u32>>,
    /// Eager indexes, pre-built by the evaluator's planner.
    indexes: FxHashMap<Mask, Index>,
    /// Lazily auto-built indexes serving unplanned lookups (interior
    /// mutability: [`Relation::lookup`] takes `&self`). Each mask's index
    /// sits behind its own `OnceLock` latch, so under concurrent readers
    /// it is built exactly once — and *outside* the map lock, so a slow
    /// build never blocks lookups on other masks.
    lazy: RwLock<FxHashMap<Mask, Arc<OnceLock<Index>>>>,
}

impl Relation {
    /// Creates an empty relation (arity fixed by the first insert).
    pub fn new() -> Self {
        Relation::default()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tuple width (0 until the first insert).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Pre-sizes the flat storage and dedup map for `additional` more
    /// tuples of width `arity` (the bulk-load and merge fast path).
    pub fn reserve(&mut self, additional: usize, arity: usize) {
        if self.len == 0 && self.rows.is_empty() {
            self.arity = arity;
        }
        self.rows.reserve(additional * arity);
        // When the dedup table must grow at all, grow it ~8x rather than
        // hashbrown's 2x while it is small: a fixpoint relation only ever
        // grows, and the wider step cuts the entry-relocation traffic of
        // repeated resizes to a fraction. Past ~1M entries the table's
        // peak memory matters more than relocation constants, so fall
        // back to ordinary doubling there.
        if self.seen.capacity() - self.seen.len() < additional {
            let aggressive = if self.seen.len() < (1 << 20) {
                7 * self.seen.len()
            } else {
                0
            };
            self.seen.reserve(additional.max(aggressive));
        }
    }

    /// Inserts a tuple; returns `false` if it was already present.
    ///
    /// Panics if the arity differs from previously inserted tuples (a
    /// predicate's arity is fixed — mixed arities would be a programming
    /// error in the translator or a malformed program).
    pub fn insert(&mut self, tuple: &[TermId]) -> bool {
        self.insert_hashed(tuple, row_hash(tuple))
    }

    /// [`Relation::insert`] with the row hash precomputed — the merge
    /// path of the batched executor, whose staging buffers carry the hash
    /// computed at emission time so it is never taken twice.
    pub fn insert_hashed(&mut self, tuple: &[TermId], hash: u64) -> bool {
        debug_assert_eq!(hash, row_hash(tuple));
        if self.len == 0 && self.rows.is_empty() {
            self.arity = tuple.len();
        } else {
            assert_eq!(
                tuple.len(),
                self.arity,
                "arity mismatch: relation holds {}-tuples",
                self.arity
            );
        }
        let idx = self.len as u32;
        match self.seen.entry(hash) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(idx);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if row_at(&self.rows, self.arity, *e.get()) == tuple {
                    return false;
                }
                let chain = self.seen_overflow.entry(hash).or_default();
                if chain
                    .iter()
                    .any(|&i| row_at(&self.rows, self.arity, i) == tuple)
                {
                    return false;
                }
                chain.push(idx);
            }
        }
        self.rows.extend_from_slice(tuple);
        self.len += 1;
        if !self.indexes.is_empty() {
            for (&mask, index) in self.indexes.iter_mut() {
                index_add(index, tuple, mask, idx);
            }
        }
        // `&mut self` means no other thread is inside `lookup` — the map
        // lock is uncontended and every latch is fully initialised or
        // unobserved. Lazily built indexes stay consistent across inserts.
        let lazy = self.lazy.get_mut().unwrap();
        if !lazy.is_empty() {
            lazy.retain(|&mask, cell| match Arc::get_mut(cell) {
                Some(once) => {
                    if let Some(index) = once.get_mut() {
                        index_add(index, tuple, mask, idx);
                    }
                    true
                }
                // An escaped latch handle (impossible today: `lookup`
                // drops its clone before returning) — drop the entry; the
                // index is rebuilt from scratch on the next probe rather
                // than served stale.
                None => false,
            });
        }
        true
    }

    /// Merges one staging buffer of emitted rows (with precomputed
    /// hashes): every fresh row is inserted and appended to
    /// `delta_batch`; duplicates are dropped. Returns the number of
    /// fresh rows.
    ///
    /// This is [`Relation::insert_hashed`] with the loop-invariant work
    /// hoisted: storage pre-sized once, and the index-maintenance checks
    /// taken once per batch instead of once per row (the common merge
    /// target — a freshly derived predicate — has no indexes to
    /// maintain, so its loop is just the dedup probe plus appends).
    pub fn merge_staged(&mut self, out: &Staging, delta_batch: &mut ColumnBatch) -> usize {
        debug_assert!(
            out.arity > 0,
            "nullary merges are special-cased by the caller"
        );
        if self.len == 0 && self.rows.is_empty() {
            self.arity = out.arity;
        } else {
            assert_eq!(
                out.arity, self.arity,
                "arity mismatch: relation holds {}-tuples",
                self.arity
            );
        }
        self.reserve(out.count, out.arity);
        let plain = self.indexes.is_empty() && self.lazy.get_mut().unwrap().is_empty();
        let mut fresh = 0usize;
        for (tuple, &hash) in out.ids.chunks_exact(out.arity).zip(&out.hashes) {
            if plain {
                let idx = self.len as u32;
                match self.seen.entry(hash) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(idx);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if row_at(&self.rows, self.arity, *e.get()) == tuple {
                            continue;
                        }
                        let chain = self.seen_overflow.entry(hash).or_default();
                        if chain
                            .iter()
                            .any(|&i| row_at(&self.rows, self.arity, i) == tuple)
                        {
                            continue;
                        }
                        chain.push(idx);
                    }
                }
                self.rows.extend_from_slice(tuple);
                self.len += 1;
            } else if !self.insert_hashed(tuple, hash) {
                continue;
            }
            fresh += 1;
            delta_batch.push_row(tuple);
        }
        fresh
    }

    /// Membership check.
    pub fn contains(&self, tuple: &[TermId]) -> bool {
        self.contains_hashed(tuple, row_hash(tuple))
    }

    /// [`Relation::contains`] with the row hash precomputed.
    pub fn contains_hashed(&self, tuple: &[TermId], hash: u64) -> bool {
        if tuple.len() != self.arity {
            return false;
        }
        let Some(&first) = self.seen.get(&hash) else {
            return false;
        };
        if row_at(&self.rows, self.arity, first) == tuple {
            return true;
        }
        self.seen_overflow.get(&hash).is_some_and(|chain| {
            chain
                .iter()
                .any(|&i| row_at(&self.rows, self.arity, i) == tuple)
        })
    }

    /// The tuple at internal index `idx`.
    pub fn row(&self, idx: u32) -> &[TermId] {
        row_at(&self.rows, self.arity, idx)
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[TermId]> + '_ {
        (0..self.len as u32).map(move |i| self.row(i))
    }

    /// Builds the eager index for `mask` if missing (promoting a lazily
    /// built one when available instead of rebuilding). Returns whether
    /// an index was actually built or promoted — the profiler's
    /// index-build count.
    pub fn ensure_index(&mut self, mask: Mask) -> bool {
        if mask == 0 || self.indexes.contains_key(&mask) {
            return false;
        }
        if let Some(cell) = self.lazy.get_mut().unwrap().remove(&mask) {
            if let Some(ready) = Arc::try_unwrap(cell).ok().and_then(OnceLock::into_inner) {
                self.indexes.insert(mask, ready);
                return true;
            }
        }
        self.indexes.insert(mask, self.build_index(mask));
        true
    }

    /// The eager index for `mask`, if built — the evaluator resolves this
    /// once per rule pass and probes the raw buckets in its tight loops.
    #[inline]
    pub(crate) fn hash_index(&self, mask: Mask) -> Option<&Index> {
        self.indexes.get(&mask)
    }

    /// The shared, lazily auto-built index for `mask`, built on demand
    /// behind the per-mask `OnceLock` — the evaluator's `&self` fallback
    /// when a planned probe names a mask the snapshot did not build
    /// eagerly (frozen bases build only the masks live plans name). The
    /// returned cell is always initialised; the snapshot's next freeze
    /// promotes it to an eager index. `None` when there is nothing to
    /// probe.
    pub(crate) fn shared_index(&self, mask: Mask) -> Option<Arc<OnceLock<Index>>> {
        if mask == 0 || self.len == 0 {
            return None;
        }
        let cell = {
            let lazy = self.lazy.read().unwrap();
            lazy.get(&mask).cloned()
        };
        let cell =
            cell.unwrap_or_else(|| self.lazy.write().unwrap().entry(mask).or_default().clone());
        cell.get_or_init(|| self.build_index(mask));
        Some(cell)
    }

    /// The bound-position masks with an eager index built, sorted
    /// ascending (diagnostics and the snapshot content signature).
    pub fn index_masks(&self) -> Vec<Mask> {
        let mut masks: Vec<Mask> = self.indexes.keys().copied().collect();
        masks.sort_unstable();
        masks
    }

    /// Total number of row references held by the eager index for
    /// `mask`, if built. A complete, current index references every row
    /// exactly once, so this equals [`Relation::len`] — the snapshot
    /// content signature uses that as its index-integrity check.
    pub fn indexed_rows(&self, mask: Mask) -> Option<usize> {
        self.indexes
            .get(&mask)
            .map(|ix| ix.values().map(Vec::len).sum())
    }

    /// Drops the eager index for `mask`. The evaluator sheds indexes that
    /// only a stratum's one-shot naive pass probed, so the semi-naive
    /// merge loop does not keep them current for nothing; a later
    /// [`Relation::ensure_index`] (or lazy lookup) simply rebuilds.
    pub fn drop_index(&mut self, mask: Mask) -> bool {
        self.indexes.remove(&mask).is_some()
    }

    fn build_index(&self, mask: Mask) -> Index {
        let mut index = Index::default();
        for (i, t) in self.iter().enumerate() {
            index_add(&mut index, t, mask, i as u32);
        }
        index
    }

    /// Looks up tuple indices whose `mask` columns equal `key`.
    ///
    /// The evaluator's planner pre-builds its indexes with
    /// [`Relation::ensure_index`], so its probes hit the borrowed fast
    /// path. A lookup on a mask that was never planned auto-builds the
    /// index on first miss instead of panicking: concurrent readers race
    /// to a per-mask `OnceLock`, exactly one builds, the rest block on
    /// the latch and then probe; the built index is memoised and
    /// maintained on subsequent inserts. Those probes return an owned
    /// copy of the matching ids.
    ///
    /// Buckets are keyed by the 64-bit key hash; candidate rows are
    /// verified against `key`, so the result is exact either way.
    pub fn lookup(&self, mask: Mask, key: &[TermId]) -> Matches<'_> {
        static EMPTY: Vec<u32> = Vec::new();
        let hash = row_hash(key);
        if let Some(index) = self.indexes.get(&mask) {
            let Some(bucket) = index.get(&hash) else {
                return Matches::Borrowed(&EMPTY);
            };
            return self.verify_bucket(bucket, mask, key);
        }
        if self.len == 0 {
            return Matches::Borrowed(&EMPTY);
        }
        let cell = {
            let lazy = self.lazy.read().unwrap();
            lazy.get(&mask).cloned()
        };
        let cell =
            cell.unwrap_or_else(|| self.lazy.write().unwrap().entry(mask).or_default().clone());
        // Build outside the map lock: one winner per mask, losers wait on
        // the latch. Subsequent probes reuse the memoised index.
        let index = cell.get_or_init(|| self.build_index(mask));
        match index.get(&hash) {
            Some(bucket) => Matches::Owned(
                bucket
                    .iter()
                    .copied()
                    .filter(|&i| self.row_matches(i, mask, key))
                    .collect(),
            ),
            None => Matches::Borrowed(&EMPTY),
        }
    }

    /// Fast path: buckets almost always verify in full (a non-trivial
    /// filter implies a 64-bit hash collision), so return the bucket
    /// borrowed when every row matches.
    fn verify_bucket<'a>(&'a self, bucket: &'a [u32], mask: Mask, key: &[TermId]) -> Matches<'a> {
        if bucket.iter().all(|&i| self.row_matches(i, mask, key)) {
            return Matches::Borrowed(bucket);
        }
        Matches::Owned(
            bucket
                .iter()
                .copied()
                .filter(|&i| self.row_matches(i, mask, key))
                .collect(),
        )
    }

    /// Builds every non-trivial per-mask index eagerly — the freeze-time
    /// "index-complete" step ([`crate::frozen::FrozenDb`]). Relations up
    /// to `max_full_arity` columns get all `2^arity - 1` masks, making
    /// every possible [`Relation::lookup`] a lock-free eager-index hit;
    /// wider relations only promote their lazily auto-built indexes, so
    /// an unplanned `lookup` mask there still takes the (thread-safe)
    /// `OnceLock` auto-build path on first probe. The evaluator itself
    /// never does: a scan step without an eager index falls back to a
    /// verified full scan.
    pub fn complete_indexes(&mut self, max_full_arity: usize) {
        if self.arity > 0 && self.arity <= max_full_arity {
            for mask in 1..(1u64 << self.arity) {
                self.ensure_index(mask);
            }
        } else {
            let masks: Vec<Mask> = self.lazy.get_mut().unwrap().keys().copied().collect();
            for mask in masks {
                self.ensure_index(mask);
            }
        }
        self.lazy.get_mut().unwrap().clear();
    }

    /// Promotes every lazily auto-built index to an eager, incrementally
    /// maintained one — without building any new masks. This is the
    /// profile-guided freeze step: masks that real probes demanded on the
    /// previous snapshot (planned probes falling back via the shared
    /// lazy cell, or unplanned [`Relation::lookup`]s) become lock-free
    /// eager indexes of the next one, while never-probed masks are never
    /// built at all.
    pub fn promote_lazy_indexes(&mut self) {
        let masks: Vec<Mask> = self.lazy.get_mut().unwrap().keys().copied().collect();
        for mask in masks {
            self.ensure_index(mask);
        }
        self.lazy.get_mut().unwrap().clear();
    }

    /// Removes every tuple for which `keep` returns `false`, preserving
    /// the insertion order of the retained tuples. Returns the number of
    /// tuples removed.
    ///
    /// The dedup tables are rebuilt over the survivors, and so is every
    /// *already-built* eager index — exactly the masks the relation had,
    /// no more (the incremental re-freeze path relies on this: a
    /// predicate touched by removals pays an index rebuild for the masks
    /// it actually serves, while untouched predicates keep their indexes
    /// as-is and [`Relation::complete_indexes`] later finds nothing to
    /// do). Lazily auto-built indexes are dropped; the next unplanned
    /// probe rebuilds them on demand.
    pub fn retain(&mut self, mut keep: impl FnMut(&[TermId]) -> bool) -> usize {
        if self.len == 0 {
            return 0;
        }
        if self.arity == 0 {
            // A nullary relation holds at most the empty tuple.
            if !keep(&[]) {
                let removed = self.len;
                self.len = 0;
                self.seen.clear();
                self.seen_overflow.clear();
                return removed;
            }
            return 0;
        }
        let masks: Vec<Mask> = self.indexes.keys().copied().collect();
        let old_rows = std::mem::take(&mut self.rows);
        let old_len = self.len;
        self.len = 0;
        self.rows.reserve(old_rows.len());
        self.seen.clear();
        self.seen_overflow.clear();
        self.indexes.clear();
        self.lazy.get_mut().unwrap().clear();
        for tuple in old_rows.chunks_exact(self.arity) {
            if keep(tuple) {
                self.insert_hashed(tuple, row_hash(tuple));
            }
        }
        for mask in masks {
            self.indexes.insert(mask, self.build_index(mask));
        }
        old_len - self.len
    }

    /// Removes a batch of tuples in time proportional to the *batch*,
    /// not the relation: each present tuple is swap-removed (the last
    /// tuple moves into the vacated slot) and the dedup tables plus
    /// every already-built eager index are patched in place —
    /// O(batch × (eager masks + 2)) hash operations, against the full
    /// O(len) rebuild of [`Relation::retain`]. Tuples not present are
    /// ignored; the count of tuples actually removed is returned.
    ///
    /// Unlike `retain`, insertion order is **not** preserved (relations
    /// are sets; only enumeration order changes). Lazily auto-built
    /// indexes are dropped and rebuilt on next probe. Batches of half
    /// the relation or more fall back to `retain` internally — one
    /// rebuild beats that many patches.
    pub fn remove_rows(&mut self, batch: &FxHashSet<Vec<TermId>>) -> usize {
        if batch.is_empty() || self.len == 0 {
            return 0;
        }
        if self.arity == 0 {
            return self.retain(|t| !batch.contains(t));
        }
        if batch.len() >= self.len / 2 {
            return self.retain(|t| !batch.contains(t));
        }
        // Lazily built indexes are probe-demanded and would be promoted
        // to eager at the next freeze regardless; promoting them *now*
        // lets the per-row patching below keep them current instead of
        // throwing away an O(len) build.
        self.promote_lazy_indexes();
        let mut removed = 0usize;
        for tuple in batch {
            if self.remove_one(tuple) {
                removed += 1;
            }
        }
        removed
    }

    /// Removes a single tuple by swap-remove, patching dedup tables and
    /// eager indexes. Returns `false` if the tuple is absent. The lazy
    /// index map must already be cleared (callers batch that).
    fn remove_one(&mut self, tuple: &[TermId]) -> bool {
        if tuple.len() != self.arity {
            return false;
        }
        let hash = row_hash(tuple);
        let Some(idx) = self.locate(tuple, hash) else {
            return false;
        };
        self.dedup_remove(hash, idx);
        for (&mask, index) in self.indexes.iter_mut() {
            bucket_remove(index, masked_hash(tuple, mask), idx);
        }
        let last = (self.len - 1) as u32;
        if idx != last {
            // Move the last tuple into the hole and repoint every
            // reference to it.
            let moved: Vec<TermId> = self.row(last).to_vec();
            let moved_hash = row_hash(&moved);
            self.dedup_repoint(moved_hash, last, idx);
            for (&mask, index) in self.indexes.iter_mut() {
                bucket_repoint(index, masked_hash(&moved, mask), last, idx);
            }
            let a = self.arity;
            self.rows
                .copy_within(last as usize * a..(last as usize + 1) * a, idx as usize * a);
        }
        self.rows.truncate((self.len - 1) * self.arity);
        self.len -= 1;
        true
    }

    /// The internal index of `tuple`, via the dedup tables.
    fn locate(&self, tuple: &[TermId], hash: u64) -> Option<u32> {
        let &first = self.seen.get(&hash)?;
        if row_at(&self.rows, self.arity, first) == tuple {
            return Some(first);
        }
        self.seen_overflow
            .get(&hash)?
            .iter()
            .copied()
            .find(|&i| row_at(&self.rows, self.arity, i) == tuple)
    }

    /// Drops row `idx` from the dedup tables under `hash`, promoting a
    /// collision-chain entry into the primary slot when one exists.
    fn dedup_remove(&mut self, hash: u64, idx: u32) {
        match self.seen.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if *e.get() == idx {
                    if let Some(chain) = self.seen_overflow.get_mut(&hash) {
                        *e.get_mut() = chain.swap_remove(0);
                        if chain.is_empty() {
                            self.seen_overflow.remove(&hash);
                        }
                    } else {
                        e.remove();
                    }
                } else if let Some(chain) = self.seen_overflow.get_mut(&hash) {
                    if let Some(pos) = chain.iter().position(|&i| i == idx) {
                        chain.swap_remove(pos);
                        if chain.is_empty() {
                            self.seen_overflow.remove(&hash);
                        }
                    }
                }
            }
            std::collections::hash_map::Entry::Vacant(_) => {}
        }
    }

    /// Rewrites the dedup reference `old` → `new` under `hash` (the
    /// swap-remove repoint for the moved last row).
    fn dedup_repoint(&mut self, hash: u64, old: u32, new: u32) {
        if let Some(first) = self.seen.get_mut(&hash) {
            if *first == old {
                *first = new;
                return;
            }
        }
        if let Some(chain) = self.seen_overflow.get_mut(&hash) {
            if let Some(slot) = chain.iter_mut().find(|i| **i == old) {
                *slot = new;
            }
        }
    }

    /// True when `self` and `other` hold exactly the same tuple set.
    /// Both relations are deduplicated sets, so equal lengths plus
    /// containment one way is full equality. Indexes are irrelevant —
    /// this compares *content* (the incremental re-freeze uses it to
    /// decide whether a recomputed relation can be swapped for the old
    /// one, keeping the old one's already-built indexes).
    pub fn content_eq(&self, other: &Relation) -> bool {
        self.len == other.len
            && (self.len == 0 || self.arity == other.arity)
            && other.iter().all(|t| self.contains(t))
    }

    /// A deep copy suitable for independent mutation: rows, dedup tables
    /// and eager indexes are cloned; the lazy-index map starts empty (a
    /// copy-on-write overlay rebuilds unplanned indexes on demand rather
    /// than inheriting latches). Used when an overlay database first
    /// writes to a predicate that lives in its frozen base.
    pub fn clone_for_write(&self) -> Relation {
        Relation {
            arity: self.arity,
            len: self.len,
            rows: self.rows.clone(),
            seen: self.seen.clone(),
            seen_overflow: self.seen_overflow.clone(),
            indexes: self.indexes.clone(),
            lazy: RwLock::new(FxHashMap::default()),
        }
    }

    /// True if row `idx`'s `mask` columns equal `key` (in mask-bit order).
    fn row_matches(&self, idx: u32, mask: Mask, key: &[TermId]) -> bool {
        let row = self.row(idx);
        let mut k = 0usize;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            if row.get(i) != key.get(k) {
                return false;
            }
            k += 1;
            m &= m - 1;
        }
        k == key.len()
    }
}

#[inline]
fn row_at(rows: &[TermId], arity: usize, idx: u32) -> &[TermId] {
    let start = idx as usize * arity;
    &rows[start..start + arity]
}

/// Adds a tuple to an index: hash the key columns in place, push the row
/// id into the bucket. No allocation beyond bucket growth.
fn index_add(index: &mut Index, tuple: &[TermId], mask: Mask, idx: u32) {
    index.entry(masked_hash(tuple, mask)).or_default().push(idx);
}

/// Drops row id `idx` from the bucket under `key_hash`, removing the
/// bucket when it empties.
fn bucket_remove(index: &mut Index, key_hash: u64, idx: u32) {
    if let Some(bucket) = index.get_mut(&key_hash) {
        if let Some(pos) = bucket.iter().position(|&i| i == idx) {
            bucket.swap_remove(pos);
            if bucket.is_empty() {
                index.remove(&key_hash);
            }
        }
    }
}

/// Rewrites row id `old` → `new` in the bucket under `key_hash` (the
/// swap-remove repoint for a moved row).
fn bucket_repoint(index: &mut Index, key_hash: u64, old: u32, new: u32) {
    if let Some(bucket) = index.get_mut(&key_hash) {
        if let Some(slot) = bucket.iter_mut().find(|i| **i == old) {
            *slot = new;
        }
    }
}

/// A columnar batch of fixed-arity encoded rows: one contiguous
/// `Vec<TermId>` per column. The batched executor materialises each
/// semi-naive delta as one of these — appending is column pushes, range
/// partitioning across workers is index arithmetic, and per-column access
/// in the probe loop is sequential.
#[derive(Debug, Default, Clone)]
pub struct ColumnBatch {
    len: usize,
    cols: Box<[Vec<TermId>]>,
}

impl ColumnBatch {
    /// Creates an empty batch of the given width.
    pub fn new(arity: usize) -> Self {
        ColumnBatch {
            len: 0,
            cols: vec![Vec::new(); arity].into_boxed_slice(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The columns, each of length [`ColumnBatch::len`].
    #[inline]
    pub fn cols(&self) -> &[Vec<TermId>] {
        &self.cols
    }

    /// Appends a row (given row-major).
    pub fn push_row(&mut self, row: &[TermId]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (col, &id) in self.cols.iter_mut().zip(row) {
            col.push(id);
        }
        self.len += 1;
    }
}

/// A per-worker staging buffer: head rows emitted by one rule-evaluation
/// job, as a flat id buffer plus the row hashes computed at emission time
/// (reused by the sequential merge via [`Relation::insert_hashed`], so no
/// row is ever hashed twice). `count` also covers nullary heads.
#[derive(Debug, Default)]
pub struct Staging {
    /// Tuple width of the emitted rows.
    pub arity: usize,
    /// Number of emitted rows.
    pub count: usize,
    /// Flat row storage (`count * arity` ids).
    pub ids: Vec<TermId>,
    /// One precomputed [`row_hash`] per emitted row.
    pub hashes: Vec<u64>,
    /// Join ticks the producing job spent filling this buffer — carried
    /// here (one store per job) so the merge can sum the evaluation's
    /// probe count without touching the hot loop.
    pub ticks: u64,
    /// Job wall time in nanoseconds, recorded only while the per-query
    /// profiler is armed (0 otherwise).
    pub nanos: u64,
}

impl Staging {
    /// Drops all rows, keeping the allocations.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.hashes.clear();
        self.count = 0;
        self.ticks = 0;
        self.nanos = 0;
    }
}

/// A database: the symbol table, the term dictionary and one
/// [`Relation`] per predicate — optionally *overlaid* on a frozen,
/// read-only base snapshot ([`crate::frozen::FrozenDb`]).
///
/// Overlay semantics: reads ([`Database::relation`]) consult the local
/// relations first and fall through to the base; writes stay local, with
/// a base relation copied in on first write (copy-on-write) so dedup
/// keeps seeing the full fact set. This is what lets any number of
/// concurrent queries evaluate against one shared snapshot — each owns a
/// private overlay for its derivations.
pub struct Database {
    pub(crate) symbols: Arc<SymbolTable>,
    pub(crate) dict: Arc<TermDict>,
    pub(crate) relations: FxHashMap<Sym, Relation>,
    /// The frozen base snapshot reads fall through to, if any.
    pub(crate) base: Option<Arc<crate::frozen::FrozenDb>>,
}

impl Database {
    /// Creates an empty database with a fresh symbol table.
    pub fn new() -> Self {
        Database::with_symbols(SymbolTable::new())
    }

    /// Creates an empty database sharing an existing symbol table.
    pub fn with_symbols(symbols: Arc<SymbolTable>) -> Self {
        Database {
            symbols,
            dict: TermDict::new(),
            relations: FxHashMap::default(),
            base: None,
        }
    }

    /// Creates an empty overlay database on a frozen base (shared symbol
    /// table and dictionary; see [`Database::overlay`]).
    pub(crate) fn with_base(base: Arc<crate::frozen::FrozenDb>) -> Self {
        Database {
            symbols: base.symbols().clone(),
            dict: base.dict().clone(),
            relations: FxHashMap::default(),
            base: Some(base),
        }
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// The shared term dictionary.
    pub fn dict(&self) -> &Arc<TermDict> {
        &self.dict
    }

    /// Adds a fact given as boundary constants: encodes once, then
    /// inserts. Returns `false` on duplicates.
    pub fn add_fact(&mut self, pred: Sym, tuple: Vec<Const>) -> bool {
        let encoded: Vec<TermId> = tuple.iter().map(|c| self.dict.encode(c)).collect();
        self.add_fact_ids(pred, &encoded)
    }

    /// Adds an already-encoded fact (the evaluator's internal path).
    pub fn add_fact_ids(&mut self, pred: Sym, tuple: &[TermId]) -> bool {
        self.relation_mut(pred).insert(tuple)
    }

    /// Convenience: interns the predicate name and adds the fact.
    pub fn add_fact_str(&mut self, pred: &str, tuple: Vec<Const>) -> bool {
        let p = self.symbols.intern(pred);
        self.add_fact(p, tuple)
    }

    /// Bulk fact loading: encodes and inserts every row of `rows` into
    /// `pred`'s relation, pre-sizing storage from the iterator's size
    /// hint. Returns the number of *fresh* tuples. This is the fast path
    /// the benches use so fixture loading measures the engine, not the
    /// textual Datalog parser.
    pub fn load_rows<I>(&mut self, pred: Sym, rows: I) -> usize
    where
        I: IntoIterator,
        I::Item: AsRef<[Const]>,
    {
        let iter = rows.into_iter();
        let remaining = iter.size_hint().0;
        let dict = self.dict.clone();
        let rel = self.relation_mut(pred);
        let mut scratch: Vec<TermId> = Vec::new();
        let mut fresh = 0usize;
        let mut reserved = false;
        for row in iter {
            let row = row.as_ref();
            if !reserved {
                rel.reserve(remaining.max(1), row.len());
                reserved = true;
            }
            scratch.clear();
            scratch.extend(row.iter().map(|c| dict.encode(c)));
            if rel.insert(&scratch) {
                fresh += 1;
            }
        }
        fresh
    }

    /// Bulk loading of already-encoded rows (`nrows * arity` ids,
    /// row-major). Returns the number of fresh tuples.
    pub fn load_encoded_rows(&mut self, pred: Sym, arity: usize, ids: &[TermId]) -> usize {
        assert!(
            arity > 0 && ids.len().is_multiple_of(arity),
            "load_encoded_rows: id buffer is not a whole number of {arity}-tuples"
        );
        let rel = self.relation_mut(pred);
        rel.reserve(ids.len() / arity, arity);
        ids.chunks_exact(arity)
            .filter(|row| rel.insert(row))
            .count()
    }

    /// The relation for `pred`, if any facts exist — checking the local
    /// relations first, then the frozen base (overlay read-through).
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.relations
            .get(&pred)
            .or_else(|| self.base.as_ref().and_then(|b| b.relation(pred)))
    }

    /// Mutable access, creating the relation if absent.
    ///
    /// On an overlay, a predicate that only exists in the frozen base is
    /// first copied into the local map (copy-on-write) so inserts dedup
    /// against — and scans keep seeing — the base facts. Translated query
    /// programs never hit the copy: their head predicates are namespaced
    /// per query and never collide with base predicates.
    pub fn relation_mut(&mut self, pred: Sym) -> &mut Relation {
        match self.relations.entry(pred) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let rel = self
                    .base
                    .as_ref()
                    .and_then(|b| b.relation(pred))
                    .map(Relation::clone_for_write)
                    .unwrap_or_default();
                e.insert(rel)
            }
        }
    }

    /// Ensures the `(pred, mask)` hash index exists, without forcing a
    /// copy-on-write: a predicate served by the frozen base is
    /// index-complete already (or deliberately scan-only above
    /// [`crate::frozen::FULL_INDEX_MAX_ARITY`] columns), so the planner's
    /// index pre-pass is a no-op there.
    pub fn ensure_index(&mut self, pred: Sym, mask: Mask) -> bool {
        if let Some(rel) = self.relations.get_mut(&pred) {
            return rel.ensure_index(mask);
        }
        if self
            .base
            .as_ref()
            .is_some_and(|b| b.relation(pred).is_some())
        {
            return false;
        }
        self.relations.entry(pred).or_default().ensure_index(mask)
    }

    /// Removes and returns `pred`'s *local* relation (a frozen base, if
    /// any, is not consulted — the snapshot-refresh path that uses this
    /// operates on thawed databases, which have no base). The next write
    /// to `pred` starts from an empty relation.
    pub fn take_relation(&mut self, pred: Sym) -> Option<Relation> {
        self.relations.remove(&pred)
    }

    /// Installs `rel` as `pred`'s relation, replacing any local one.
    /// Together with [`Database::take_relation`] this lets the
    /// incremental re-freeze swap a recomputed relation back for the old
    /// one when their contents turn out equal, keeping the old
    /// already-built indexes.
    pub fn set_relation(&mut self, pred: Sym, rel: Relation) {
        self.relations.insert(pred, rel);
    }

    /// Iterates over `(predicate, relation)` pairs — local relations
    /// first, then base relations not shadowed by a local copy.
    pub fn relations(&self) -> impl Iterator<Item = (Sym, &Relation)> + '_ {
        self.relations.iter().map(|(&p, r)| (p, r)).chain(
            self.base
                .iter()
                .flat_map(|b| b.relations())
                .filter(|(p, _)| !self.relations.contains_key(p)),
        )
    }

    /// Decodes an encoded tuple back to boundary constants.
    pub fn decode_tuple(&self, tuple: &[TermId]) -> Vec<Const> {
        tuple.iter().map(|&id| self.dict.decode(id)).collect()
    }

    /// Total number of facts (overlay + non-shadowed base).
    pub fn fact_count(&self) -> usize {
        self.relations().map(|(_, r)| r.len()).sum()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(dict: &TermDict, vals: &[i64]) -> Vec<TermId> {
        vals.iter().map(|&i| dict.encode(&Const::Int(i))).collect()
    }

    #[test]
    fn insert_dedupes() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        assert!(r.insert(&ids(&dict, &[1, 2])));
        assert!(!r.insert(&ids(&dict, &[1, 2])));
        assert!(r.insert(&ids(&dict, &[2, 1])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&ids(&dict, &[1, 2])));
        assert!(!r.contains(&ids(&dict, &[3, 3])));
    }

    #[test]
    fn index_lookup() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        r.insert(&ids(&dict, &[1, 10]));
        r.insert(&ids(&dict, &[1, 20]));
        r.insert(&ids(&dict, &[2, 30]));
        r.ensure_index(0b01);
        assert_eq!(r.lookup(0b01, &ids(&dict, &[1])).len(), 2);
        assert_eq!(r.lookup(0b01, &ids(&dict, &[2])).len(), 1);
        assert_eq!(r.lookup(0b01, &ids(&dict, &[9])).len(), 0);
    }

    #[test]
    fn index_updated_on_insert() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        r.insert(&ids(&dict, &[1, 10]));
        r.ensure_index(0b10);
        r.insert(&ids(&dict, &[2, 10]));
        assert_eq!(r.lookup(0b10, &ids(&dict, &[10])).len(), 2);
    }

    #[test]
    fn composite_index() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        r.insert(&ids(&dict, &[1, 2, 3]));
        r.insert(&ids(&dict, &[1, 2, 4]));
        r.insert(&ids(&dict, &[1, 9, 3]));
        r.ensure_index(0b011);
        assert_eq!(r.lookup(0b011, &ids(&dict, &[1, 2])).len(), 2);
        r.ensure_index(0b101);
        assert_eq!(r.lookup(0b101, &ids(&dict, &[1, 3])).len(), 2);
    }

    #[test]
    fn lookup_on_empty_relation_without_index() {
        let dict = TermDict::new();
        let r = Relation::new();
        assert!(r.lookup(0b1, &ids(&dict, &[1])).is_empty());
    }

    #[test]
    fn lookup_on_unbuilt_index_autobuilds() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        r.insert(&ids(&dict, &[1, 10]));
        r.insert(&ids(&dict, &[1, 20]));
        // No ensure_index: the first probe builds the index lazily.
        assert_eq!(r.lookup(0b1, &ids(&dict, &[1])).len(), 2);
        // The auto-built index is maintained on subsequent inserts.
        r.insert(&ids(&dict, &[1, 30]));
        assert_eq!(r.lookup(0b1, &ids(&dict, &[1])).len(), 3);
        // ensure_index promotes it to the eager fast path.
        r.ensure_index(0b1);
        assert!(matches!(
            r.lookup(0b1, &ids(&dict, &[1])),
            Matches::Borrowed(s) if s.len() == 3
        ));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mixed_arity_insert_panics() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        r.insert(&ids(&dict, &[1, 2]));
        r.insert(&ids(&dict, &[1]));
    }

    #[test]
    fn retain_preserves_order_and_rebuilds_existing_indexes() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        for i in 0..20i64 {
            r.insert(&ids(&dict, &[i % 4, i]));
        }
        r.ensure_index(0b01);
        r.ensure_index(0b10);
        let drop_key = ids(&dict, &[3]);
        let removed = r.retain(|row| row[0] != drop_key[0]);
        assert_eq!(removed, 5);
        assert_eq!(r.len(), 15);
        // Insertion order of survivors is intact.
        let first: Vec<TermId> = r.row(0).to_vec();
        assert_eq!(first, ids(&dict, &[0, 0]));
        // Exactly the pre-existing masks are rebuilt, and they are current.
        assert_eq!(r.index_masks(), vec![0b01, 0b10]);
        assert_eq!(r.lookup(0b01, &ids(&dict, &[3])).len(), 0);
        assert_eq!(r.lookup(0b01, &ids(&dict, &[2])).len(), 5);
        assert_eq!(r.indexed_rows(0b10), Some(15));
        // Dedup tables are rebuilt: survivors stay deduped, removed rows
        // can be re-inserted.
        assert!(!r.insert(&ids(&dict, &[0, 0])));
        assert!(r.insert(&ids(&dict, &[3, 3])));
    }

    #[test]
    fn retain_everything_is_a_noop() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        for i in 0..5i64 {
            r.insert(&ids(&dict, &[i, i]));
        }
        assert_eq!(r.retain(|_| true), 0);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn content_eq_ignores_order_and_indexes() {
        let dict = TermDict::new();
        let mut a = Relation::new();
        let mut b = Relation::new();
        for i in 0..10i64 {
            a.insert(&ids(&dict, &[i, i + 1]));
        }
        for i in (0..10i64).rev() {
            b.insert(&ids(&dict, &[i, i + 1]));
        }
        a.ensure_index(0b01);
        assert!(a.content_eq(&b));
        assert!(b.content_eq(&a));
        b.insert(&ids(&dict, &[99, 99]));
        assert!(!a.content_eq(&b));
    }

    #[test]
    fn database_basics() {
        let mut db = Database::new();
        assert!(db.add_fact_str("p", vec![Const::Int(1)]));
        assert!(!db.add_fact_str("p", vec![Const::Int(1)]));
        db.add_fact_str("q", vec![Const::Int(1), Const::Int(2)]);
        assert_eq!(db.fact_count(), 2);
        let p = db.symbols().get("p").unwrap();
        assert_eq!(db.relation(p).unwrap().len(), 1);
        assert!(db.relation(db.symbols().intern("zzz")).is_none());
    }

    #[test]
    fn encode_decode_roundtrip_through_db() {
        let mut db = Database::new();
        let tuple = vec![
            Const::Int(1),
            Const::Str(db.symbols().intern("x")),
            Const::Null,
        ];
        db.add_fact_str("p", tuple.clone());
        let p = db.symbols().get("p").unwrap();
        let rel = db.relation(p).unwrap();
        let row: Vec<TermId> = rel.iter().next().unwrap().to_vec();
        assert_eq!(db.decode_tuple(&row), tuple);
    }

    #[test]
    fn concurrent_lazy_lookup_builds_once_and_agrees() {
        // Regression test for the lazily auto-built index path: hammer an
        // unindexed mask from many threads at once. The OnceLock latch
        // must serve every thread the same (correct) answer, whichever
        // thread wins the build race.
        let dict = TermDict::new();
        let mut r = Relation::new();
        for i in 0..2_000i64 {
            r.insert(&ids(&dict, &[i % 50, i]));
        }
        let r = std::sync::Arc::new(r);
        let results: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|k| {
                    let r = r.clone();
                    let dict = dict.clone();
                    s.spawn(move || {
                        let mut counts = Vec::new();
                        for probe in 0..50i64 {
                            let key = ids(&dict, &[(probe + k) % 50]);
                            counts.push(r.lookup(0b01, &key).len());
                        }
                        counts
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (k, counts) in results.iter().enumerate() {
            for (probe, &n) in counts.iter().enumerate() {
                assert_eq!(n, 40, "thread {k} probe {probe}: 2000/50 rows per key");
            }
        }
    }

    #[test]
    fn load_rows_bulk_path_matches_add_fact() {
        let mut a = Database::new();
        let mut b = Database::with_symbols(a.symbols().clone());
        let rows: Vec<Vec<Const>> = (0..100)
            .map(|i| vec![Const::Int(i % 30), Const::Int(i)])
            .collect();
        for row in &rows {
            a.add_fact_str("p", row.clone());
        }
        let p = b.symbols().intern("p");
        let fresh = b.load_rows(p, &rows);
        assert_eq!(fresh, 100);
        assert_eq!(b.load_rows(p, &rows), 0, "reload is a no-op");
        let (ra, rb) = (a.relation(p).unwrap(), b.relation(p).unwrap());
        assert_eq!(ra.len(), rb.len());
        let decode = |db: &Database, r: &Relation| -> Vec<Vec<Const>> {
            r.iter().map(|t| db.decode_tuple(t)).collect()
        };
        assert_eq!(decode(&a, ra), decode(&b, rb));
    }

    #[test]
    fn load_encoded_rows_bulk_path() {
        let mut db = Database::new();
        let p = db.symbols().intern("p");
        let flat: Vec<TermId> = (0..20)
            .map(|i| db.dict().encode(&Const::Int(i % 7)))
            .collect();
        assert_eq!(db.load_encoded_rows(p, 2, &flat), 7, "pairs repeat mod 7");
        assert_eq!(db.relation(p).unwrap().arity(), 2);
    }

    #[test]
    fn column_batch_roundtrip() {
        let dict = TermDict::new();
        let mut b = ColumnBatch::new(3);
        assert!(b.is_empty());
        let rows = [ids(&dict, &[1, 2, 3]), ids(&dict, &[4, 5, 6])];
        for r in &rows {
            b.push_row(r);
        }
        assert_eq!((b.len(), b.arity()), (2, 3));
        let row1: Vec<TermId> = b.cols().iter().map(|c| c[1]).collect();
        assert_eq!(row1, rows[1]);
        assert_eq!(b.cols()[2], vec![rows[0][2], rows[1][2]]);
    }

    #[test]
    fn insert_hashed_and_contains_hashed_agree_with_plain() {
        let dict = TermDict::new();
        let mut r = Relation::new();
        let t1 = ids(&dict, &[7, 8]);
        let h1 = row_hash(&t1);
        assert!(r.insert_hashed(&t1, h1));
        assert!(!r.insert_hashed(&t1, h1));
        assert!(r.contains_hashed(&t1, h1));
        assert!(r.contains(&t1));
        assert!(!r.contains_hashed(&ids(&dict, &[8, 7]), row_hash(&ids(&dict, &[8, 7]))));
    }

    #[test]
    fn project_mask() {
        let dict = TermDict::new();
        let t = ids(&dict, &[1, 2, 3]);
        assert_eq!(project(&t, 0b101), vec![t[0], t[2]]);
        assert_eq!(project(&t, 0), Vec::<TermId>::new());
        assert_eq!(project(&t, 0b111), t);
    }
}
