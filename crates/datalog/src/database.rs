//! The fact store: per-predicate relations with on-demand hash indexes.

use std::sync::Arc;

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::symbols::{Sym, SymbolTable};
use crate::value::Const;

/// A position mask: bit `i` set means argument position `i` is part of the
/// index key. Relations support up to 64 columns (far beyond any predicate
/// the translation generates).
pub type Mask = u64;

/// Extracts the key columns selected by `mask` from a tuple.
pub fn project(tuple: &[Const], mask: Mask) -> Vec<Const> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    for (i, c) in tuple.iter().enumerate() {
        if mask & (1 << i) != 0 {
            key.push(c.clone());
        }
    }
    key
}

/// A relation: a deduplicated, insertion-ordered set of tuples with hash
/// indexes built on demand per bound-position mask and maintained
/// incrementally on insert.
#[derive(Debug, Default)]
pub struct Relation {
    tuples: Vec<Arc<[Const]>>,
    set: FxHashSet<Arc<[Const]>>,
    indexes: FxHashMap<Mask, FxHashMap<Vec<Const>, Vec<u32>>>,
}

impl Relation {
    pub fn new() -> Self {
        Relation::default()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `false` if it was already present.
    pub fn insert(&mut self, tuple: Vec<Const>) -> bool {
        let arc: Arc<[Const]> = tuple.into();
        if !self.set.insert(arc.clone()) {
            return false;
        }
        let idx = self.tuples.len() as u32;
        for (&mask, index) in self.indexes.iter_mut() {
            index.entry(project(&arc, mask)).or_default().push(idx);
        }
        self.tuples.push(arc);
        true
    }

    /// Membership check.
    pub fn contains(&self, tuple: &[Const]) -> bool {
        self.set.contains(tuple)
    }

    /// The tuple at internal index `idx`.
    pub fn tuple(&self, idx: u32) -> &Arc<[Const]> {
        &self.tuples[idx as usize]
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<[Const]>> + '_ {
        self.tuples.iter()
    }

    /// Builds the index for `mask` if missing.
    pub fn ensure_index(&mut self, mask: Mask) {
        if mask == 0 || self.indexes.contains_key(&mask) {
            return;
        }
        let mut index: FxHashMap<Vec<Const>, Vec<u32>> = FxHashMap::default();
        for (i, t) in self.tuples.iter().enumerate() {
            index.entry(project(t, mask)).or_default().push(i as u32);
        }
        self.indexes.insert(mask, index);
    }

    /// Looks up tuple indices matching `key` under `mask`. The index must
    /// have been built with [`Relation::ensure_index`]; an unbuilt index
    /// returns an empty slice only for relations that are empty, otherwise
    /// it panics (a programming error in the evaluator).
    pub fn lookup(&self, mask: Mask, key: &[Const]) -> &[u32] {
        static EMPTY: Vec<u32> = Vec::new();
        match self.indexes.get(&mask) {
            Some(index) => index.get(key).unwrap_or(&EMPTY),
            None if self.tuples.is_empty() => &EMPTY,
            None => panic!("lookup on unbuilt index mask {mask:#b}"),
        }
    }
}

/// A database: the symbol table plus one [`Relation`] per predicate.
pub struct Database {
    symbols: Arc<SymbolTable>,
    relations: FxHashMap<Sym, Relation>,
}

impl Database {
    /// Creates an empty database with a fresh symbol table.
    pub fn new() -> Self {
        Database {
            symbols: SymbolTable::new(),
            relations: FxHashMap::default(),
        }
    }

    /// Creates an empty database sharing an existing symbol table.
    pub fn with_symbols(symbols: Arc<SymbolTable>) -> Self {
        Database { symbols, relations: FxHashMap::default() }
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// Adds a fact. Returns `false` on duplicates.
    pub fn add_fact(&mut self, pred: Sym, tuple: Vec<Const>) -> bool {
        self.relations.entry(pred).or_default().insert(tuple)
    }

    /// Convenience: interns the predicate name and adds the fact.
    pub fn add_fact_str(&mut self, pred: &str, tuple: Vec<Const>) -> bool {
        let p = self.symbols.intern(pred);
        self.add_fact(p, tuple)
    }

    /// The relation for `pred`, if any facts exist.
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Mutable access, creating the relation if absent.
    pub fn relation_mut(&mut self, pred: Sym) -> &mut Relation {
        self.relations.entry(pred).or_default()
    }

    /// Iterates over `(predicate, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (Sym, &Relation)> + '_ {
        self.relations.iter().map(|(&p, r)| (p, r))
    }

    /// Total number of facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    #[test]
    fn insert_dedupes() {
        let mut r = Relation::new();
        assert!(r.insert(vec![c(1), c(2)]));
        assert!(!r.insert(vec![c(1), c(2)]));
        assert!(r.insert(vec![c(2), c(1)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[c(1), c(2)]));
        assert!(!r.contains(&[c(3), c(3)]));
    }

    #[test]
    fn index_lookup() {
        let mut r = Relation::new();
        r.insert(vec![c(1), c(10)]);
        r.insert(vec![c(1), c(20)]);
        r.insert(vec![c(2), c(30)]);
        r.ensure_index(0b01);
        assert_eq!(r.lookup(0b01, &[c(1)]).len(), 2);
        assert_eq!(r.lookup(0b01, &[c(2)]).len(), 1);
        assert_eq!(r.lookup(0b01, &[c(9)]).len(), 0);
    }

    #[test]
    fn index_updated_on_insert() {
        let mut r = Relation::new();
        r.insert(vec![c(1), c(10)]);
        r.ensure_index(0b10);
        r.insert(vec![c(2), c(10)]);
        assert_eq!(r.lookup(0b10, &[c(10)]).len(), 2);
    }

    #[test]
    fn composite_index() {
        let mut r = Relation::new();
        r.insert(vec![c(1), c(2), c(3)]);
        r.insert(vec![c(1), c(2), c(4)]);
        r.insert(vec![c(1), c(9), c(3)]);
        r.ensure_index(0b011);
        assert_eq!(r.lookup(0b011, &[c(1), c(2)]).len(), 2);
        r.ensure_index(0b101);
        assert_eq!(r.lookup(0b101, &[c(1), c(3)]).len(), 2);
    }

    #[test]
    fn lookup_on_empty_relation_without_index() {
        let r = Relation::new();
        assert!(r.lookup(0b1, &[c(1)]).is_empty());
    }

    #[test]
    #[should_panic(expected = "unbuilt index")]
    fn lookup_on_unbuilt_index_panics() {
        let mut r = Relation::new();
        r.insert(vec![c(1)]);
        r.lookup(0b1, &[c(1)]);
    }

    #[test]
    fn database_basics() {
        let mut db = Database::new();
        assert!(db.add_fact_str("p", vec![c(1)]));
        assert!(!db.add_fact_str("p", vec![c(1)]));
        db.add_fact_str("q", vec![c(1), c(2)]);
        assert_eq!(db.fact_count(), 2);
        let p = db.symbols().get("p").unwrap();
        assert_eq!(db.relation(p).unwrap().len(), 1);
        assert!(db.relation(db.symbols().intern("zzz")).is_none());
    }

    #[test]
    fn project_mask() {
        let t = vec![c(1), c(2), c(3)];
        assert_eq!(project(&t, 0b101), vec![c(1), c(3)]);
        assert_eq!(project(&t, 0), Vec::<Const>::new());
        assert_eq!(project(&t, 0b111), t);
    }
}
