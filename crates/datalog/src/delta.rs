//! Incremental retraction: DRed-style delete/re-derive over encoded rows.
//!
//! [`retract`] maintains a materialised database under fact deletions in
//! time proportional to what the deletions touch, instead of re-running
//! the whole fixpoint. It is the engine behind the store's O(delta)
//! removal commits (ROADMAP item 3): the T_D auxiliary predicates and the
//! ontology entailments are both defined by plain positive rules over the
//! loaded facts, so one generic delete/re-derive pass retracts exactly
//! the derivations that lost their last support.
//!
//! The algorithm is the classic two-phase DRed (delete-and-re-derive),
//! specialised to the engine's dictionary-encoded rows:
//!
//! 1. **Overdelete** — starting from the explicitly deleted rows, every
//!    rule is run *backwards through its body*: a deleted fact matching a
//!    body atom has the remaining atoms joined against the (unmodified)
//!    database, and each resulting head row becomes a deletion candidate
//!    unless it is externally supported (still asserted). This is the
//!    semi-naive forward closure of "might have depended on a deleted
//!    fact"; it deliberately overshoots.
//! 2. **Re-derive** — each candidate is checked for an *alternative*
//!    derivation against the database *with the candidate set masked
//!    out* (a visibility filter; nothing is physically removed yet). A
//!    re-derived row becomes visible again and may re-support other
//!    candidates, so the phase iterates to a fixpoint (bounded by the
//!    candidate count). Only the rows that stay dead are then removed,
//!    by targeted swap-remove (`Relation::remove_rows`), which patches
//!    dedup tables and eager indexes per row — a relation whose
//!    casualties all re-derive is never rebuilt, and one that loses a
//!    handful of rows pays for the handful, not its size.
//!
//! Existential rules (the ontology's ∃-generators) need no special
//! bookkeeping: the evaluator Skolemises existential head variables
//! *deterministically* over the rule's frontier (`_ex_r{idx}_{name}`
//! functors, see `eval.rs`), so both phases compute the exact head row a
//! deleted body row did or would produce by recomputing the same Skolem
//! term via [`TermDict::skolem`]. A row created by a different rule over
//! the same predicate is never touched by accident.
//!
//! The module handles positive, non-aggregate rules — exactly the shape
//! of the T_D base program and the ontology compilation. Anything else
//! (negation, conditions, assignments, aggregates, `@post`) returns
//! [`MaintainError::Unsupported`] and the caller falls back to a full
//! re-evaluation; incremental maintenance under non-monotone rules is a
//! different algorithm, not a missing `match` arm.

use crate::database::{ColumnBatch, Database, Mask};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::rule::{AtomArg, BodyItem, Program};
use crate::symbols::Sym;
use crate::value::{TermDict, TermId};

/// An encoded fact row.
pub type Row = Vec<TermId>;

/// Why a deletion could not be maintained incrementally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintainError {
    /// The program contains a construct the maintainer does not handle
    /// (negation, filters, assignments, aggregates or `@post`
    /// directives). Callers fall back to full re-evaluation.
    Unsupported(String),
}

impl std::fmt::Display for MaintainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintainError::Unsupported(what) => {
                write!(f, "incremental maintenance unsupported: {what}")
            }
        }
    }
}

impl std::error::Error for MaintainError {}

/// The outcome of one [`retract`] pass.
#[derive(Debug, Default)]
pub struct Retraction {
    /// Rows physically removed, per predicate — the net delta after
    /// re-derivation. Includes the explicitly deleted rows that were
    /// present (and stayed dead).
    pub removed: FxHashMap<Sym, Vec<Row>>,
    /// Deletion candidates marked by the overdelete phase (including the
    /// explicit seeds).
    pub overdeleted: usize,
    /// Candidates that survived via an alternative derivation and were
    /// kept in place.
    pub rederived: usize,
}

impl Retraction {
    /// Total rows physically removed across all predicates.
    pub fn removed_rows(&self) -> usize {
        self.removed.values().map(Vec::len).sum()
    }
}

/// A body atom with its constants pre-encoded to [`TermId`]s.
struct EncAtom {
    pred: Sym,
    args: Vec<EncArg>,
}

#[derive(Clone, Copy)]
enum EncArg {
    Var(u32),
    Id(TermId),
}

/// A rule compiled for maintenance: encoded head/body plus the Skolem
/// recipe for its existential head variables (identical to the
/// evaluator's: functor `_ex_r{rule_idx}_{var_name}` applied to the
/// frontier values in `frontier_vars()` order).
struct EncRule {
    head: EncAtom,
    body: Vec<EncAtom>,
    nvars: usize,
    /// `(var, functor)` per existential head variable.
    existentials: Vec<(u32, Sym)>,
    /// Frontier variables, in Skolem-argument order.
    frontier: Vec<u32>,
}

fn encode_atom(pred: Sym, args: &[AtomArg], dict: &TermDict) -> EncAtom {
    EncAtom {
        pred,
        args: args
            .iter()
            .map(|a| match a {
                AtomArg::Var(v) => EncArg::Var(*v),
                AtomArg::Const(c) => EncArg::Id(dict.encode(c)),
            })
            .collect(),
    }
}

fn compile(program: &Program, db: &Database) -> Result<Vec<EncRule>, MaintainError> {
    if !program.post.is_empty() {
        return Err(MaintainError::Unsupported(
            "@post directives reshape relations after the fixpoint".into(),
        ));
    }
    let symbols = db.symbols().clone();
    let dict = db.dict().clone();
    let mut out = Vec::with_capacity(program.rules.len());
    for (rule_idx, rule) in program.rules.iter().enumerate() {
        if rule.aggregate.is_some() {
            return Err(MaintainError::Unsupported("aggregate rule".into()));
        }
        let mut body = Vec::with_capacity(rule.body.len());
        for item in &rule.body {
            match item {
                BodyItem::Pos(a) => body.push(encode_atom(a.pred, &a.args, &dict)),
                BodyItem::Neg(_) => {
                    return Err(MaintainError::Unsupported("negated atom".into()));
                }
                BodyItem::Cond(_) => {
                    return Err(MaintainError::Unsupported("filter condition".into()));
                }
                BodyItem::Assign(..) => {
                    return Err(MaintainError::Unsupported("assignment".into()));
                }
            }
        }
        // The same functor naming as `compile_rule` in eval.rs — the
        // Skolem terms recomputed here must be *identical* to the ones
        // the evaluator interned, which also means the program must be
        // the one the database was materialised with, rule order
        // included.
        let existentials = rule
            .existential_vars()
            .into_iter()
            .map(|v| {
                let name = &rule.var_names[v as usize];
                (v, symbols.intern(&format!("_ex_r{rule_idx}_{name}")))
            })
            .collect();
        out.push(EncRule {
            head: encode_atom(rule.head.pred, &rule.head.args, &dict),
            body,
            nvars: rule.var_names.len(),
            existentials,
            frontier: rule.frontier_vars(),
        });
    }
    Ok(out)
}

/// Binds `atom`'s variables against `row`. Returns `false` on a constant
/// mismatch or an inconsistent repeated variable.
fn unify(atom: &EncAtom, row: &[TermId], env: &mut [Option<TermId>]) -> bool {
    debug_assert_eq!(atom.args.len(), row.len());
    for (arg, &id) in atom.args.iter().zip(row) {
        match arg {
            EncArg::Id(c) => {
                if *c != id {
                    return false;
                }
            }
            EncArg::Var(v) => match env[*v as usize] {
                Some(bound) if bound != id => return false,
                Some(_) => {}
                None => env[*v as usize] = Some(id),
            },
        }
    }
    true
}

/// Enumerates every binding of `atoms` (skipping index `skip`) consistent
/// with `env` against `db`, invoking `found` per complete binding.
/// Returns early once `found` returns `false` (existence checks).
/// Rows masked out of the database during the re-derive phase: the
/// still-overdeleted candidates. Joins treat them as absent without any
/// physical removal having happened yet.
type Hidden = FxHashMap<Sym, FxHashSet<Row>>;

fn is_hidden(hidden: &Hidden, pred: Sym, row: &[TermId]) -> bool {
    hidden.get(&pred).is_some_and(|set| set.contains(row))
}

fn join(
    atoms: &[EncAtom],
    skip: Option<usize>,
    env: &mut [Option<TermId>],
    db: &Database,
    hidden: &Hidden,
    found: &mut dyn FnMut(&mut [Option<TermId>]) -> bool,
) -> bool {
    // Atoms are solved in body order (bodies here are 1–2 atoms; a
    // join-order search would cost more than it saves).
    join_from(atoms, skip, 0, env, db, hidden, found)
}

fn join_from(
    atoms: &[EncAtom],
    skip: Option<usize>,
    next: usize,
    env: &mut [Option<TermId>],
    db: &Database,
    hidden: &Hidden,
    found: &mut dyn FnMut(&mut [Option<TermId>]) -> bool,
) -> bool {
    let Some(i) = (next..atoms.len()).find(|&i| Some(i) != skip) else {
        return found(env);
    };
    let atom = &atoms[i];
    let Some(rel) = db.relation(atom.pred) else {
        return true; // empty relation: no matches, keep enumerating peers
    };
    // Bound positions become the probe key; unbound variables are filled
    // from each match (verified for repeated-variable consistency by
    // `unify`).
    let mut mask: Mask = 0;
    let mut key: Vec<TermId> = Vec::new();
    let mut all_bound = true;
    for (pos, arg) in atom.args.iter().enumerate() {
        match arg {
            EncArg::Id(c) => {
                mask |= 1 << pos;
                key.push(*c);
            }
            EncArg::Var(v) => match env[*v as usize] {
                Some(id) => {
                    mask |= 1 << pos;
                    key.push(id);
                }
                None => all_bound = false,
            },
        }
    }
    if all_bound {
        // `key` is the full row in position order when every position is
        // bound, so the hidden check probes with it directly.
        if !rel.contains(&key) || is_hidden(hidden, atom.pred, &key) {
            return true;
        }
        return join_from(atoms, skip, i + 1, env, db, hidden, found);
    }
    let matches: Vec<u32> = if mask == 0 {
        (0..rel.len() as u32).collect()
    } else {
        rel.lookup(mask, &key).to_vec()
    };
    let saved: Vec<Option<TermId>> = env.to_vec();
    for m in matches {
        let row = rel.row(m).to_vec();
        if is_hidden(hidden, atom.pred, &row) {
            continue;
        }
        env.copy_from_slice(&saved);
        if !unify(atom, &row, env) {
            continue;
        }
        if !join_from(atoms, skip, i + 1, env, db, hidden, found) {
            return false;
        }
    }
    env.copy_from_slice(&saved);
    true
}

/// Instantiates `rule`'s head under `env`, Skolemising existential
/// variables over the frontier. Returns `None` if a head variable is
/// unbound (cannot happen for safe rules).
fn head_row(rule: &EncRule, env: &[Option<TermId>], dict: &TermDict) -> Option<Row> {
    let mut ex_values: FxHashMap<u32, TermId> = FxHashMap::default();
    if !rule.existentials.is_empty() {
        let frontier: Vec<TermId> = rule
            .frontier
            .iter()
            .map(|&v| env[v as usize])
            .collect::<Option<_>>()?;
        for (v, functor) in &rule.existentials {
            ex_values.insert(*v, dict.skolem(*functor, &frontier));
        }
    }
    rule.head
        .args
        .iter()
        .map(|arg| match arg {
            EncArg::Id(c) => Some(*c),
            EncArg::Var(v) => env[*v as usize].or_else(|| ex_values.get(v).copied()),
        })
        .collect()
}

/// Checks whether `row` (a fact of `rule`'s head predicate) has a
/// derivation through `rule` in `db` with the `hidden` rows masked out:
/// head unification binds the frontier, the Skolem identity of
/// existential positions is verified, and the body is joined for
/// existence over the visible facts only.
fn rederivable_via(
    rule: &EncRule,
    row: &[TermId],
    db: &Database,
    hidden: &Hidden,
    dict: &TermDict,
) -> bool {
    if rule.head.args.len() != row.len() {
        return false;
    }
    let mut env: Vec<Option<TermId>> = vec![None; rule.nvars];
    // Bind non-existential head positions; remember existential values
    // for the identity check below.
    for (arg, &id) in rule.head.args.iter().zip(row) {
        match arg {
            EncArg::Id(c) => {
                if *c != id {
                    return false;
                }
            }
            EncArg::Var(v) => match env[*v as usize] {
                Some(bound) if bound != id => return false,
                Some(_) => {}
                None => env[*v as usize] = Some(id),
            },
        }
    }
    // An existential position must carry exactly the Skolem term this
    // rule would mint over its frontier (all frontier variables are head
    // variables, so they are bound by now).
    for (v, functor) in &rule.existentials {
        let Some(frontier) = rule
            .frontier
            .iter()
            .map(|&fv| env[fv as usize])
            .collect::<Option<Vec<_>>>()
        else {
            return false;
        };
        match env[*v as usize] {
            Some(actual) if actual == dict.skolem(*functor, &frontier) => {}
            _ => return false,
        }
    }
    // Clear existential bindings for the body join: they do not occur in
    // the body by definition.
    for (v, _) in &rule.existentials {
        env[*v as usize] = None;
    }
    let mut derivable = false;
    join(&rule.body, None, &mut env, db, hidden, &mut |_| {
        derivable = true;
        false // first witness suffices
    });
    derivable
}

/// Retracts `deleted` rows from `db` and incrementally maintains every
/// relation `program` derives, in time proportional to the affected
/// fact set.
///
/// * `program` must be the program `db` was materialised with (same
///   rules, same order — Skolem identities depend on rule indices).
/// * `deleted` maps predicates to the rows being retracted at the EDB
///   level; rows not present are ignored.
/// * `externally_supported(pred, row)` reports rows that keep
///   independent, non-rule support after the deletion (the store passes
///   its post-deletion *asserted* set here). Such rows are never
///   removed, and propagation stops at them.
///
/// On success every relation with *net* casualties has had exactly those
/// rows removed (targeted swap-remove, cost proportional to the
/// casualties); relations whose candidates all re-derived are untouched.
/// The returned [`Retraction`] lists the net removals. On
/// [`MaintainError`] the database is untouched.
pub fn retract(
    program: &Program,
    db: &mut Database,
    deleted: &FxHashMap<Sym, ColumnBatch>,
    externally_supported: &dyn Fn(Sym, &[TermId]) -> bool,
) -> Result<Retraction, MaintainError> {
    let rules = compile(program, db)?;
    let dict = db.dict().clone();

    // Rules indexed by body predicate: the forward (overdelete) step
    // asks "who consumes this deleted fact?".
    let mut by_body: FxHashMap<Sym, Vec<(usize, usize)>> = FxHashMap::default();
    for (ri, rule) in rules.iter().enumerate() {
        for (bi, atom) in rule.body.iter().enumerate() {
            by_body.entry(atom.pred).or_default().push((ri, bi));
        }
    }
    // ... and by head predicate for the backward (re-derive) step.
    let mut by_head: FxHashMap<Sym, Vec<usize>> = FxHashMap::default();
    for (ri, rule) in rules.iter().enumerate() {
        by_head.entry(rule.head.pred).or_default().push(ri);
    }

    // --- Phase 1: overdelete ------------------------------------------
    // Candidates per predicate, plus a worklist of fresh ones. The
    // database is *not* modified in this phase: joins run against the
    // full pre-deletion state, which can only overestimate (exactly what
    // DRed wants).
    let no_hidden = Hidden::default();
    let mut over: Hidden = FxHashMap::default();
    let mut worklist: Vec<(Sym, Row)> = Vec::new();
    for (&pred, batch) in deleted {
        let Some(rel) = db.relation(pred) else {
            continue;
        };
        let set = over.entry(pred).or_default();
        for i in 0..batch.len() {
            let row: Row = batch.cols().iter().map(|c| c[i]).collect();
            if !rel.contains(&row) || externally_supported(pred, &row) {
                continue;
            }
            if set.insert(row.clone()) {
                worklist.push((pred, row));
            }
        }
    }

    while let Some((pred, row)) = worklist.pop() {
        let Some(consumers) = by_body.get(&pred) else {
            continue;
        };
        for &(ri, bi) in consumers {
            let rule = &rules[ri];
            let mut env: Vec<Option<TermId>> = vec![None; rule.nvars];
            if !unify(&rule.body[bi], &row, &mut env) {
                continue;
            }
            let mut heads: Vec<Row> = Vec::new();
            join(&rule.body, Some(bi), &mut env, db, &no_hidden, &mut |env| {
                if let Some(h) = head_row(rule, env, &dict) {
                    heads.push(h);
                }
                true
            });
            for h in heads {
                let head_pred = rule.head.pred;
                let present = db.relation(head_pred).is_some_and(|r| r.contains(&h));
                if !present
                    || externally_supported(head_pred, &h)
                    || over.get(&head_pred).is_some_and(|s| s.contains(&h))
                {
                    continue;
                }
                over.entry(head_pred).or_default().insert(h.clone());
                worklist.push((head_pred, h));
            }
        }
    }
    over.retain(|_, set| !set.is_empty());
    let overdeleted: usize = over.values().map(FxHashSet::len).sum();
    if overdeleted == 0 {
        return Ok(Retraction::default());
    }

    // --- Phase 2: re-derive against the hidden view --------------------
    // Nothing is physically removed yet. Re-derivability joins run on
    // the database with the overdeleted rows masked out; a candidate
    // proven alive becomes visible again and may re-support further
    // candidates, so iterate to fixpoint. Seeds are candidates too: an
    // explicitly deleted row a rule still derives (an asserted triple
    // that is also entailed) simply stays, matching fresh-reload
    // semantics exactly. Working on the mask instead of the storage
    // means a relation whose casualties all come back — the common case
    // for dense auxiliaries — is never touched at all.
    let mut rederived = 0usize;
    loop {
        let candidates: Vec<(Sym, Row)> = over
            .iter()
            .flat_map(|(&p, set)| set.iter().map(move |r| (p, r.clone())))
            .collect();
        let mut progressed = false;
        for (pred, row) in candidates {
            let alive = by_head.get(&pred).is_some_and(|ris| {
                ris.iter()
                    .any(|&ri| rederivable_via(&rules[ri], &row, db, &over, &dict))
            });
            if alive {
                over.get_mut(&pred).expect("candidate pred").remove(&row);
                rederived += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // --- Phase 3: compact the net casualties ---------------------------
    // Only rows that stayed dead are physically removed, by targeted
    // swap-remove ([`Relation::remove_rows`]): dedup tables and eager
    // indexes are patched per row, so the commit cost stays proportional
    // to the casualties, not the relation.
    over.retain(|_, set| !set.is_empty());
    let mut removed: FxHashMap<Sym, Vec<Row>> = FxHashMap::default();
    for (&pred, set) in &over {
        db.relation_mut(pred).remove_rows(set);
        removed.insert(pred, set.iter().cloned().collect());
    }
    Ok(Retraction {
        removed,
        overdeleted,
        rederived,
    })
}

/// Convenience for callers staging deletions row by row: appends `row`
/// to the per-predicate [`ColumnBatch`] in `deleted`.
pub fn stage_deletion(deleted: &mut FxHashMap<Sym, ColumnBatch>, pred: Sym, row: &[TermId]) {
    deleted
        .entry(pred)
        .or_insert_with(|| ColumnBatch::new(row.len()))
        .push_row(row);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, EvalOptions};
    use crate::parser::parse_program;
    use crate::value::Const;

    fn options() -> EvalOptions {
        EvalOptions {
            threads: Some(1),
            ..Default::default()
        }
    }

    /// Loads `edges`, materialises `prog`, deletes `gone`, and checks the
    /// maintained database equals a from-scratch rebuild, relation by
    /// relation (as sorted row sets).
    fn check_against_rebuild(src: &str, edges: &[(i64, i64)], gone: &[(i64, i64)]) {
        let mut db = Database::new();
        let e = db.symbols().intern("edge");
        let rows: Vec<Vec<Const>> = edges
            .iter()
            .map(|&(a, b)| vec![Const::Int(a), Const::Int(b)])
            .collect();
        db.load_rows(e, &rows);
        let prog = parse_program(src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &options()).unwrap();

        let gone_set: FxHashSet<(i64, i64)> = gone.iter().copied().collect();
        let mut deleted: FxHashMap<Sym, ColumnBatch> = FxHashMap::default();
        for &(a, b) in gone {
            let row = [
                db.dict().encode(&Const::Int(a)),
                db.dict().encode(&Const::Int(b)),
            ];
            stage_deletion(&mut deleted, e, &row);
        }
        retract(&prog, &mut db, &deleted, &|_, _| false).unwrap();

        // Fresh rebuild over the surviving edges.
        let mut fresh = Database::with_symbols(db.symbols().clone());
        let survivors: Vec<Vec<Const>> = edges
            .iter()
            .filter(|&&p| !gone_set.contains(&p))
            .map(|&(a, b)| vec![Const::Int(a), Const::Int(b)])
            .collect();
        fresh.load_rows(e, &survivors);
        evaluate(&prog, &mut fresh, &options()).unwrap();

        let preds: FxHashSet<Sym> = db
            .relations()
            .map(|(p, _)| p)
            .chain(fresh.relations().map(|(p, _)| p))
            .collect();
        for p in preds {
            let dump = |d: &Database| -> Vec<Row> {
                let mut v: Vec<Row> = d
                    .relation(p)
                    .map(|r| r.iter().map(<[TermId]>::to_vec).collect())
                    .unwrap_or_default();
                v.sort();
                v
            };
            assert_eq!(
                dump(&db),
                dump(&fresh),
                "relation {} diverged after retract",
                db.symbols().resolve(p)
            );
        }
    }

    #[test]
    fn non_recursive_projection_is_maintained() {
        check_against_rebuild(
            "src(X) :- edge(X, Y).\ndst(Y) :- edge(X, Y).\n",
            &[(1, 2), (1, 3), (2, 3)],
            &[(1, 2)],
        );
        // src(1) survives via (1,3); dst(2) dies; dst(3) survives twice.
    }

    #[test]
    fn recursive_closure_is_maintained() {
        // A chain plus a shortcut: deleting the shortcut must keep the
        // reachability facts the chain still supports.
        check_against_rebuild(
            "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n",
            &[(1, 2), (2, 3), (3, 4), (1, 3)],
            &[(1, 3)],
        );
        // And deleting a chain link cuts everything downstream of it.
        check_against_rebuild(
            "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n",
            &[(1, 2), (2, 3), (3, 4), (1, 3)],
            &[(2, 3)],
        );
    }

    #[test]
    fn cycles_do_not_rederive_themselves() {
        // The classic DRed trap: a 3-cycle's closure facts all support
        // each other; deleting one edge must not let the orphaned loop
        // re-derive itself from its own corpse.
        check_against_rebuild(
            "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n",
            &[(1, 2), (2, 3), (3, 1)],
            &[(3, 1)],
        );
    }

    #[test]
    fn externally_supported_rows_stop_propagation() {
        let mut db = Database::new();
        let e = db.symbols().intern("edge");
        db.load_rows(
            e,
            &[
                vec![Const::Int(1), Const::Int(2)],
                vec![Const::Int(2), Const::Int(3)],
            ],
        );
        let prog = parse_program("hop(X, Z) :- edge(X, Y), edge(Y, Z).\n", db.symbols()).unwrap();
        evaluate(&prog, &mut db, &options()).unwrap();
        let hop = db.symbols().get("hop").unwrap();
        assert_eq!(db.relation(hop).unwrap().len(), 1);

        // Delete edge(1,2) but declare hop(1,3) externally supported:
        // the edge goes, the hop stays.
        let row = [
            db.dict().encode(&Const::Int(1)),
            db.dict().encode(&Const::Int(2)),
        ];
        let mut deleted: FxHashMap<Sym, ColumnBatch> = FxHashMap::default();
        stage_deletion(&mut deleted, e, &row);
        let outcome = retract(&prog, &mut db, &deleted, &|pred, _| pred == hop).unwrap();
        assert_eq!(db.relation(e).unwrap().len(), 1);
        assert_eq!(db.relation(hop).unwrap().len(), 1);
        assert_eq!(outcome.removed_rows(), 1);
    }

    #[test]
    fn existential_heads_are_retracted_exactly() {
        // Two ∃-rules over the same head predicate, as the ontology
        // compiler emits for two SomeValuesFrom axioms on one property:
        // deleting one trigger retracts only that rule's Skolem row.
        let src = "gen(X, Z) :- a(X).\ngen(X, Z) :- b(X).\n";
        let mut db = Database::new();
        let (a, b) = (db.symbols().intern("a"), db.symbols().intern("b"));
        db.load_rows(a, &[vec![Const::Int(7)]]);
        db.load_rows(b, &[vec![Const::Int(7)]]);
        let prog = parse_program(src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &options()).unwrap();
        let gen = db.symbols().get("gen").unwrap();
        assert_eq!(db.relation(gen).unwrap().len(), 2, "one Skolem per rule");

        let row = [db.dict().encode(&Const::Int(7))];
        let mut deleted: FxHashMap<Sym, ColumnBatch> = FxHashMap::default();
        stage_deletion(&mut deleted, a, &row);
        let outcome = retract(&prog, &mut db, &deleted, &|_, _| false).unwrap();
        assert_eq!(
            db.relation(gen).unwrap().len(),
            1,
            "rule 0's null dies with a(7); rule 1's survives via b(7)"
        );
        assert_eq!(outcome.removed_rows(), 2); // a(7) + one gen row
        let _ = b;
    }

    #[test]
    fn unsupported_shapes_are_refused_and_leave_db_alone() {
        let mut db = Database::new();
        let e = db.symbols().intern("edge");
        db.load_rows(e, &[vec![Const::Int(1), Const::Int(2)]]);
        let prog =
            parse_program("lonely(X) :- edge(X, Y), not edge(Y, X).\n", db.symbols()).unwrap();
        evaluate(&prog, &mut db, &options()).unwrap();
        let before = db.fact_count();
        let mut deleted: FxHashMap<Sym, ColumnBatch> = FxHashMap::default();
        stage_deletion(
            &mut deleted,
            e,
            &[
                db.dict().encode(&Const::Int(1)),
                db.dict().encode(&Const::Int(2)),
            ],
        );
        let err = retract(&prog, &mut db, &deleted, &|_, _| false).unwrap_err();
        assert!(matches!(err, MaintainError::Unsupported(_)));
        assert_eq!(db.fact_count(), before, "refusal leaves the db untouched");
    }

    #[test]
    fn deleting_absent_rows_is_a_noop() {
        let mut db = Database::new();
        let e = db.symbols().intern("edge");
        db.load_rows(e, &[vec![Const::Int(1), Const::Int(2)]]);
        let prog = parse_program("tc(X, Y) :- edge(X, Y).\n", db.symbols()).unwrap();
        evaluate(&prog, &mut db, &options()).unwrap();
        let mut deleted: FxHashMap<Sym, ColumnBatch> = FxHashMap::default();
        stage_deletion(
            &mut deleted,
            e,
            &[
                db.dict().encode(&Const::Int(8)),
                db.dict().encode(&Const::Int(9)),
            ],
        );
        let outcome = retract(&prog, &mut db, &deleted, &|_, _| false).unwrap();
        assert_eq!(outcome.removed_rows(), 0);
        assert_eq!(outcome.overdeleted, 0);
        assert_eq!(db.fact_count(), 2); // edge(1,2) + tc(1,2), nothing lost
    }
}
