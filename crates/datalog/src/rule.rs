//! Rules, atoms and programs.

use std::fmt;

use crate::expr::Expr;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::symbols::{Sym, SymbolTable};
use crate::value::Const;

/// A rule-local variable id (index into [`Rule::var_names`]).
pub type VarId = u32;

/// One argument position of an atom: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomArg {
    /// A variable position.
    Var(VarId),
    /// A constant position.
    Const(Const),
}

/// A predicate applied to arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: Sym,
    /// The argument positions, constants or variables.
    pub args: Vec<AtomArg>,
}

impl Atom {
    /// Creates an atom `pred(args...)`.
    pub fn new(pred: Sym, args: Vec<AtomArg>) -> Self {
        Atom { pred, args }
    }

    /// The distinct variables of the atom.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for a in &self.args {
            if let AtomArg::Var(v) = a {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }
}

/// One element of a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyItem {
    /// A positive atom.
    Pos(Atom),
    /// A negated atom (`not p(...)`). All its variables must be bound by
    /// earlier positive items (safe negation).
    Neg(Atom),
    /// A filter condition; evaluated once all its variables are bound.
    Cond(Expr),
    /// An assignment `V = expr` binding a fresh variable. This is how the
    /// translation constructs Skolem tuple IDs (`ID = ["f2", X, ...]`).
    Assign(VarId, Expr),
}

/// Aggregate functions (Vadalog-style post-fixpoint aggregation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (`COUNT`).
    Count,
    /// Numeric sum (`SUM`); integral when every input is integral.
    Sum,
    /// Minimum under the engine's total term order (`MIN`).
    Min,
    /// Maximum under the engine's total term order (`MAX`).
    Max,
    /// Numeric mean (`AVG`).
    Avg,
}

/// An aggregation attached to a rule: the rule's matches are grouped by all
/// head variables except `result_var`, and `func` is applied to `input`
/// within each group (`input = None` counts rows).
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Collapse duplicate inputs before aggregating (`DISTINCT`).
    pub distinct: bool,
    /// The aggregated expression; `None` counts rows.
    pub input: Option<Expr>,
    /// The head variable receiving the aggregate result.
    pub result_var: VarId,
}

/// A Datalog± rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The head atom being derived.
    pub head: Atom,
    /// The body items, evaluated left to right.
    pub body: Vec<BodyItem>,
    /// Aggregation spec, if this is an aggregate rule.
    pub aggregate: Option<AggSpec>,
    /// Debug names of the rule's variables, indexed by [`VarId`].
    pub var_names: Vec<String>,
}

impl Rule {
    /// Head variables that are bound nowhere in the body: these are the
    /// *existential* variables (∃z in the paper's notation). The engine
    /// Skolemises them over the rule's frontier.
    pub fn existential_vars(&self) -> Vec<VarId> {
        let mut bound = Vec::new();
        for item in &self.body {
            match item {
                BodyItem::Pos(a) => bound.extend(a.vars()),
                BodyItem::Assign(v, _) => bound.push(*v),
                _ => {}
            }
        }
        if let Some(agg) = &self.aggregate {
            bound.push(agg.result_var);
        }
        self.head
            .vars()
            .into_iter()
            .filter(|v| !bound.contains(v))
            .collect()
    }

    /// The frontier: head variables that *are* bound in the body.
    pub fn frontier_vars(&self) -> Vec<VarId> {
        let ex = self.existential_vars();
        self.head
            .vars()
            .into_iter()
            .filter(|v| !ex.contains(v))
            .collect()
    }

    /// The rule's *read set*: every predicate its body consults (positive
    /// and negated atoms). Together with [`Rule::write_pred`] this is the
    /// dependency metadata the parallel executor uses: rules evaluated in
    /// the same pass only read the shared snapshot, and their writes are
    /// applied by the sequential merge — so two rules of a pass are
    /// independent exactly because no read set can observe another rule's
    /// in-flight writes.
    pub fn read_preds(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        for item in &self.body {
            if let BodyItem::Pos(a) | BodyItem::Neg(a) = item {
                if !out.contains(&a.pred) {
                    out.push(a.pred);
                }
            }
        }
        out
    }

    /// The rule's *write set*: the single predicate it derives into.
    pub fn write_pred(&self) -> Sym {
        self.head.pred
    }

    /// The body positions at which this rule positively reads any
    /// predicate in `preds` — the occurrences a semi-naive round
    /// restricts to a delta.
    pub fn positive_occurrences_of(&self, preds: &FxHashSet<Sym>) -> Vec<usize> {
        self.body
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match item {
                BodyItem::Pos(a) if preds.contains(&a.pred) => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Renders the rule in textual Datalog syntax for debugging.
    pub fn display(&self, symbols: &SymbolTable) -> String {
        let fmt_arg = |a: &AtomArg| match a {
            AtomArg::Var(v) => self
                .var_names
                .get(*v as usize)
                .cloned()
                .unwrap_or_else(|| format!("V{v}")),
            AtomArg::Const(c) => c.display(symbols),
        };
        let fmt_atom = |a: &Atom| {
            let args: Vec<String> = a.args.iter().map(fmt_arg).collect();
            format!("{}({})", symbols.resolve(a.pred), args.join(", "))
        };
        let mut parts = Vec::new();
        for item in &self.body {
            match item {
                BodyItem::Pos(a) => parts.push(fmt_atom(a)),
                BodyItem::Neg(a) => parts.push(format!("not {}", fmt_atom(a))),
                BodyItem::Cond(e) => parts.push(e.display(&self.var_names, symbols)),
                BodyItem::Assign(v, e) => parts.push(format!(
                    "{} = {}",
                    self.var_names
                        .get(*v as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("V{v}")),
                    e.display(&self.var_names, symbols)
                )),
            }
        }
        if self.body.is_empty() {
            format!("{}.", fmt_atom(&self.head))
        } else {
            format!("{} :- {}.", fmt_atom(&self.head), parts.join(", "))
        }
    }
}

/// Post-fixpoint operations on an output predicate — the `@post`
/// instructions of Vadalog (`@post("ans", "orderby(2)")` in Figure 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PostOp {
    /// Sort by the given column positions (`true` = descending).
    OrderBy(Vec<(usize, bool)>),
    /// Keep at most `n` tuples (after ordering).
    Limit(usize),
    /// Skip the first `n` tuples (after ordering).
    Offset(usize),
}

/// A complete Datalog± program: rules, base facts, output directives.
#[derive(Debug, Default, Clone)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
    /// Ground facts (EDB) bundled with the program.
    pub facts: Vec<(Sym, Vec<Const>)>,
    /// `@output` predicates.
    pub outputs: Vec<Sym>,
    /// `@post` directives, applied in order per predicate.
    pub post: Vec<(Sym, PostOp)>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// All predicates appearing in rule heads (IDB predicates).
    pub fn idb_predicates(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.head.pred) {
                out.push(r.head.pred);
            }
        }
        out
    }

    /// Renders the whole program for debugging.
    pub fn display(&self, symbols: &SymbolTable) -> String {
        let mut out = String::new();
        for (pred, args) in &self.facts {
            let rendered: Vec<String> = args.iter().map(|c| c.display(symbols)).collect();
            out.push_str(&format!(
                "{}({}).\n",
                symbols.resolve(*pred),
                rendered.join(", ")
            ));
        }
        for r in &self.rules {
            out.push_str(&r.display(symbols));
            out.push('\n');
        }
        for o in &self.outputs {
            out.push_str(&format!("@output(\"{}\").\n", symbols.resolve(*o)));
        }
        for (p, op) in &self.post {
            out.push_str(&format!("@post(\"{}\", {:?}).\n", symbols.resolve(*p), op));
        }
        out
    }
}

/// A convenience builder that maps variable *names* to [`VarId`]s while
/// assembling a rule. Used heavily by the SPARQL translator.
pub struct RuleBuilder {
    vars: FxHashMap<String, VarId>,
    var_names: Vec<String>,
    head: Option<Atom>,
    body: Vec<BodyItem>,
    aggregate: Option<AggSpec>,
}

impl Default for RuleBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RuleBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        RuleBuilder {
            vars: FxHashMap::default(),
            var_names: Vec::new(),
            head: None,
            body: Vec::new(),
            aggregate: None,
        }
    }

    /// Returns (interning if needed) the id of the named variable.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = self.var_names.len() as VarId;
        self.var_names.push(name.to_string());
        self.vars.insert(name.to_string(), v);
        v
    }

    /// Shorthand for `AtomArg::Var(self.var(name))`.
    pub fn v(&mut self, name: &str) -> AtomArg {
        AtomArg::Var(self.var(name))
    }

    /// Sets the head atom.
    pub fn head(&mut self, pred: Sym, args: Vec<AtomArg>) -> &mut Self {
        self.head = Some(Atom::new(pred, args));
        self
    }

    /// Appends a positive body atom.
    pub fn pos(&mut self, pred: Sym, args: Vec<AtomArg>) -> &mut Self {
        self.body.push(BodyItem::Pos(Atom::new(pred, args)));
        self
    }

    /// Appends a negated body atom.
    pub fn neg(&mut self, pred: Sym, args: Vec<AtomArg>) -> &mut Self {
        self.body.push(BodyItem::Neg(Atom::new(pred, args)));
        self
    }

    /// Appends a filter condition.
    pub fn cond(&mut self, e: Expr) -> &mut Self {
        self.body.push(BodyItem::Cond(e));
        self
    }

    /// Appends an assignment.
    pub fn assign(&mut self, var: VarId, e: Expr) -> &mut Self {
        self.body.push(BodyItem::Assign(var, e));
        self
    }

    /// Attaches an aggregation.
    pub fn aggregate(&mut self, spec: AggSpec) -> &mut Self {
        self.aggregate = Some(spec);
        self
    }

    /// Finalises the rule. Panics if no head was set.
    pub fn build(self) -> Rule {
        Rule {
            head: self.head.expect("RuleBuilder: head not set"),
            body: self.body,
            aggregate: self.aggregate,
            var_names: self.var_names,
        }
    }
}

impl fmt::Display for PostOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostOp::OrderBy(cols) => write!(f, "orderby({cols:?})"),
            PostOp::Limit(n) => write!(f, "limit({n})"),
            PostOp::Offset(n) => write!(f, "offset({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;

    #[test]
    fn builder_interns_vars() {
        let t = SymbolTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        let mut b = RuleBuilder::new();
        let x1 = b.var("X");
        let x2 = b.var("X");
        let y = b.var("Y");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        let (hx, hy) = (b.v("X"), b.v("Y"));
        b.head(p, vec![hx, hy]);
        let (bx, by) = (b.v("X"), b.v("Y"));
        b.pos(q, vec![bx, by]);
        let r = b.build();
        assert_eq!(r.var_names, vec!["X", "Y"]);
        assert!(r.existential_vars().is_empty());
        assert_eq!(r.frontier_vars().len(), 2);
    }

    #[test]
    fn existential_detection() {
        let t = SymbolTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        // ∃Z p(X, Z) :- q(X).
        let mut b = RuleBuilder::new();
        let (hx, hz) = (b.v("X"), b.v("Z"));
        b.head(p, vec![hx, hz]);
        let bx = b.v("X");
        b.pos(q, vec![bx]);
        let r = b.build();
        assert_eq!(r.existential_vars(), vec![1]);
        assert_eq!(r.frontier_vars(), vec![0]);
    }

    #[test]
    fn assigned_vars_are_not_existential() {
        let t = SymbolTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        let f = t.intern("f");
        // p(Id, X) :- q(X), Id = skolem(f, X).
        let mut b = RuleBuilder::new();
        let (hid, hx) = (b.v("Id"), b.v("X"));
        b.head(p, vec![hid, hx]);
        let bx = b.v("X");
        b.pos(q, vec![bx]);
        let id = b.var("Id");
        let x = b.var("X");
        b.assign(id, Expr::Skolem(f, vec![Expr::Var(x)]));
        let r = b.build();
        assert!(r.existential_vars().is_empty());
    }

    #[test]
    fn display_rule() {
        let t = SymbolTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        let mut b = RuleBuilder::new();
        let hx = b.v("X");
        b.head(p, vec![hx]);
        let bx = b.v("X");
        b.pos(q, vec![bx.clone()]);
        b.neg(p, vec![bx]);
        let r = b.build();
        assert_eq!(r.display(&t), "p(X) :- q(X), not p(X).");
    }

    #[test]
    fn program_idb_predicates() {
        let t = SymbolTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        let mut prog = Program::new();
        let mut b = RuleBuilder::new();
        let hx = b.v("X");
        b.head(p, vec![hx]);
        let bx = b.v("X");
        b.pos(q, vec![bx]);
        prog.rules.push(b.build());
        assert_eq!(prog.idb_predicates(), vec![p]);
    }
}
