//! A textual Datalog± syntax, used by tests, examples and debugging.
//!
//! The syntax is Vadalog-flavoured:
//!
//! ```text
//! edge("a", "b").                          % facts
//! tc(X, Y) :- edge(X, Y).                  % rules (vars start uppercase)
//! tc(X, Z) :- edge(X, Y), tc(Y, Z).        % recursion
//! p(X) :- q(X), not r(X).                  % stratified negation
//! big(X) :- n(X), X > 10.                  % comparisons
//! id(I, X) :- q(X), I = skolem("f", X).    % Skolem tuple IDs
//! cnt(C) :- q(X), C = count().             % aggregation
//! @output("tc").                           % output directive
//! @post("tc", "orderby(1)").               % post-processing
//! @post("tc", "limit(10)").
//! ```
//!
//! Variables start with an uppercase letter or `_`; constants are quoted
//! strings, `<iris>`, integers, floats, `true`/`false`, and `null`.

use std::sync::Arc;

use crate::expr::{ArithOp, CmpOp, Expr};
#[cfg(test)]
use crate::rule::BodyItem;
use crate::rule::{AggFunc, AggSpec, Atom, AtomArg, PostOp, Program, RuleBuilder};
use crate::symbols::SymbolTable;
use crate::value::{Const, OrdF64};

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the source text.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "datalog parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a stream of ground facts — `pred(const, ...).` clauses only —
/// skipping the full program parser's rule/variable machinery (no
/// `RuleBuilder`, no body items, no directives). This is the line-oriented
/// fast path for bulk fact fixtures; feed the result to
/// [`crate::Database::load_rows`]. Constants use the same grammar as
/// [`parse_program`] (strings, `<iris>`, numbers, booleans, `null`), and
/// `%`/`//` comments and blank lines are allowed.
pub fn parse_facts(
    input: &str,
    symbols: &Arc<SymbolTable>,
) -> Result<Vec<(crate::symbols::Sym, Vec<Const>)>, ParseError> {
    let mut p = P {
        input,
        pos: 0,
        symbols: symbols.clone(),
    };
    let mut out = Vec::new();
    loop {
        p.ws();
        if p.at_end() {
            return Ok(out);
        }
        let name = p.ident()?;
        let pred = p.symbols.intern(&name);
        p.expect('(')?;
        let mut args = Vec::new();
        if !p.eat(')') {
            loop {
                p.ws();
                if p.peek().is_some_and(|c| c.is_uppercase() || c == '_') {
                    return p.err("parse_facts: variables are not allowed in facts");
                }
                args.push(p.constant()?);
                if p.eat(',') {
                    continue;
                }
                p.expect(')')?;
                break;
            }
        }
        p.expect('.')?;
        out.push((pred, args));
    }
}

/// Parses a textual Datalog± program.
pub fn parse_program(input: &str, symbols: &Arc<SymbolTable>) -> Result<Program, ParseError> {
    let mut p = P {
        input,
        pos: 0,
        symbols: symbols.clone(),
    };
    let mut program = Program::new();
    loop {
        p.ws();
        if p.at_end() {
            return Ok(program);
        }
        if p.peek() == Some('@') {
            p.directive(&mut program)?;
            continue;
        }
        p.clause(&mut program)?;
    }
}

struct P<'a> {
    input: &'a str,
    pos: usize,
    symbols: Arc<SymbolTable>,
}

impl<'a> P<'a> {
    fn err<T>(&self, m: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: m.into(),
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn ws(&mut self) {
        loop {
            let rest = &self.input[self.pos..];
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if trimmed.starts_with('%') || trimmed.starts_with("//") {
                match trimmed.find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.input.len(),
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected {c:?}"))
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.ws();
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.ws();
        let rest = &self.input[self.pos..];
        let len = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if len == 0 {
            return self.err("expected identifier");
        }
        let s = rest[..len].to_string();
        self.pos += len;
        Ok(s)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => return self.err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn directive(&mut self, program: &mut Program) -> Result<(), ParseError> {
        self.expect('@')?;
        let name = self.ident()?;
        self.expect('(')?;
        match name.as_str() {
            "output" => {
                let pred = self.string()?;
                program.outputs.push(self.symbols.intern(&pred));
                self.expect(')')?;
            }
            "post" => {
                let pred = self.string()?;
                self.expect(',')?;
                let spec = self.string()?;
                let op = parse_post_op(&spec).ok_or_else(|| ParseError {
                    offset: self.pos,
                    message: format!("bad @post spec {spec:?}"),
                })?;
                program.post.push((self.symbols.intern(&pred), op));
                self.expect(')')?;
            }
            other => return self.err(format!("unknown directive @{other}")),
        }
        self.expect('.')?;
        Ok(())
    }

    fn clause(&mut self, program: &mut Program) -> Result<(), ParseError> {
        let mut b = RuleBuilder::new();
        let head = self.atom(&mut b)?;
        self.ws();
        if self.eat_str(":-") {
            b.head(head.pred, head.args);
            loop {
                self.body_item(&mut b)?;
                if !self.eat(',') {
                    break;
                }
            }
            self.expect('.')?;
            program.rules.push(b.build());
        } else {
            self.expect('.')?;
            // A fact: all args must be constants.
            let mut tuple = Vec::with_capacity(head.args.len());
            for a in head.args {
                match a {
                    AtomArg::Const(c) => tuple.push(c),
                    AtomArg::Var(_) => {
                        return self.err("facts must be ground");
                    }
                }
            }
            program.facts.push((head.pred, tuple));
        }
        Ok(())
    }

    fn atom(&mut self, b: &mut RuleBuilder) -> Result<Atom, ParseError> {
        let name = self.ident()?;
        let pred = self.symbols.intern(&name);
        self.expect('(')?;
        let mut args = Vec::new();
        if !self.eat(')') {
            loop {
                args.push(self.term(b)?);
                if !self.eat(',') {
                    break;
                }
            }
            self.expect(')')?;
        }
        Ok(Atom::new(pred, args))
    }

    fn term(&mut self, b: &mut RuleBuilder) -> Result<AtomArg, ParseError> {
        self.ws();
        match self.peek() {
            Some(c) if c.is_uppercase() || c == '_' => {
                let name = self.ident()?;
                Ok(AtomArg::Var(b.var(&name)))
            }
            _ => Ok(AtomArg::Const(self.constant()?)),
        }
    }

    fn constant(&mut self) -> Result<Const, ParseError> {
        self.ws();
        match self.peek() {
            Some('"') => {
                let s = self.string()?;
                Ok(Const::Str(self.symbols.intern(&s)))
            }
            Some('<') => {
                self.bump();
                let rest = &self.input[self.pos..];
                let end = rest.find('>').ok_or_else(|| ParseError {
                    offset: self.pos,
                    message: "unterminated IRI".into(),
                })?;
                let iri = &rest[..end];
                let c = Const::Iri(self.symbols.intern(iri));
                self.pos += end + 1;
                Ok(c)
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                if c == '-' {
                    self.bump();
                }
                let mut float = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.bump();
                    } else if c == '.'
                        && self.input[self.pos + 1..]
                            .chars()
                            .next()
                            .is_some_and(|d| d.is_ascii_digit())
                    {
                        float = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = &self.input[start..self.pos];
                if float {
                    text.parse::<f64>()
                        .map(|f| Const::Float(OrdF64(f)))
                        .map_err(|_| ParseError {
                            offset: start,
                            message: "bad float".into(),
                        })
                } else {
                    text.parse::<i64>().map(Const::Int).map_err(|_| ParseError {
                        offset: start,
                        message: "bad integer".into(),
                    })
                }
            }
            _ => {
                let word = self.ident()?;
                match word.as_str() {
                    "true" => Ok(Const::Bool(true)),
                    "false" => Ok(Const::Bool(false)),
                    "null" => Ok(Const::Null),
                    other => self.err(format!("unknown constant {other:?}")),
                }
            }
        }
    }

    fn body_item(&mut self, b: &mut RuleBuilder) -> Result<(), ParseError> {
        self.ws();
        // Negation.
        let save = self.pos;
        if let Ok(word) = self.ident() {
            if word == "not" {
                let atom = self.atom(b)?;
                b.neg(atom.pred, atom.args);
                return Ok(());
            }
            self.pos = save;
        } else {
            self.pos = save;
        }

        // Either an atom or a comparison/assignment starting with a term.
        // Peek: ident '(' → atom.
        let save = self.pos;
        if let Ok(name) = self.ident() {
            self.ws();
            if self.peek() == Some('(')
                && !name.chars().next().unwrap().is_uppercase()
                && name != "skolem"
                && name != "count"
                && name != "not"
            {
                self.pos = save;
                let atom = self.atom(b)?;
                b.pos(atom.pred, atom.args);
                return Ok(());
            }
            self.pos = save;
        } else {
            self.pos = save;
        }

        // Comparison or assignment: expr op expr.
        let lhs = self.simple_expr(b)?;
        self.ws();
        let op = if self.eat_str("!=") {
            Some(CmpOp::Neq)
        } else if self.eat_str("<=") {
            Some(CmpOp::Le)
        } else if self.eat_str(">=") {
            Some(CmpOp::Ge)
        } else if self.eat_str("=") {
            None // assignment-or-equality
        } else if self.eat_str("<") {
            Some(CmpOp::Lt)
        } else if self.eat_str(">") {
            Some(CmpOp::Gt)
        } else {
            return self.err("expected comparison operator");
        };
        // `V = count()` is an aggregation, not an assignment.
        if op.is_none() {
            if let Expr::Var(v) = lhs {
                let save = self.pos;
                self.ws();
                if self.eat_str("count") && self.eat('(') && self.eat(')') {
                    b.aggregate(AggSpec {
                        func: AggFunc::Count,
                        distinct: false,
                        input: None,
                        result_var: v,
                    });
                    return Ok(());
                }
                self.pos = save;
            }
        }
        let rhs = self.simple_expr(b)?;
        match op {
            Some(op) => {
                b.cond(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)));
            }
            None => match lhs {
                Expr::Var(v) => {
                    b.assign(v, rhs);
                }
                other => {
                    b.cond(Expr::Cmp(CmpOp::Eq, Box::new(other), Box::new(rhs)));
                }
            },
        }
        Ok(())
    }

    /// A term-level expression: var, const, `skolem("f", args...)`,
    /// `count()`, or additive arithmetic over those.
    fn simple_expr(&mut self, b: &mut RuleBuilder) -> Result<Expr, ParseError> {
        let mut lhs = self.simple_atom_expr(b)?;
        loop {
            self.ws();
            let op = match self.peek() {
                Some('+') => ArithOp::Add,
                Some('*') => ArithOp::Mul,
                _ => break,
            };
            self.bump();
            let rhs = self.simple_atom_expr(b)?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn simple_atom_expr(&mut self, b: &mut RuleBuilder) -> Result<Expr, ParseError> {
        self.ws();
        match self.peek() {
            Some(c) if c.is_uppercase() || c == '_' => {
                let name = self.ident()?;
                Ok(Expr::Var(b.var(&name)))
            }
            Some(c) if c.is_lowercase() => {
                let save = self.pos;
                let name = self.ident()?;
                match name.as_str() {
                    "skolem" => {
                        self.expect('(')?;
                        let f = self.string()?;
                        let functor = self.symbols.intern(&f);
                        let mut args = Vec::new();
                        while self.eat(',') {
                            args.push(self.simple_expr(b)?);
                        }
                        self.expect(')')?;
                        Ok(Expr::Skolem(functor, args))
                    }
                    _ => {
                        self.pos = save;
                        Ok(Expr::Const(self.constant()?))
                    }
                }
            }
            _ => Ok(Expr::Const(self.constant()?)),
        }
    }
}

fn parse_post_op(spec: &str) -> Option<PostOp> {
    let spec = spec.trim();
    if let Some(rest) = spec.strip_prefix("orderby(") {
        let inner = rest.strip_suffix(')')?;
        let mut cols = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            let (num, desc) = match part.strip_suffix(" desc") {
                Some(n) => (n.trim(), true),
                None => (part, false),
            };
            cols.push((num.parse::<usize>().ok()?, desc));
        }
        return Some(PostOp::OrderBy(cols));
    }
    if let Some(rest) = spec.strip_prefix("limit(") {
        return Some(PostOp::Limit(rest.strip_suffix(')')?.trim().parse().ok()?));
    }
    if let Some(rest) = spec.strip_prefix("offset(") {
        return Some(PostOp::Offset(rest.strip_suffix(')')?.trim().parse().ok()?));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_reader_matches_full_parser() {
        let src = r#"
            % a comment
            edge(1, 2). edge(-3, 4).
            label("a", "b\"c").
            node(<http://x>).   // trailing comment
            weight(2.5, true, null).
            unit().
        "#;
        let t1 = SymbolTable::new();
        let full = parse_program(src, &t1).unwrap();
        let t2 = SymbolTable::new();
        let fast = parse_facts(src, &t2).unwrap();
        assert_eq!(fast.len(), full.facts.len());
        for ((pf, af), (pp, ap)) in fast.iter().zip(&full.facts) {
            assert_eq!(t2.resolve(*pf), t1.resolve(*pp));
            // Interned symbols differ across tables; compare displays.
            let da: Vec<String> = af.iter().map(|c| c.display(&t2)).collect();
            let db: Vec<String> = ap.iter().map(|c| c.display(&t1)).collect();
            assert_eq!(da, db);
        }
    }

    #[test]
    fn fact_reader_rejects_rules_and_vars() {
        let t = SymbolTable::new();
        assert!(parse_facts("tc(X, Y) :- edge(X, Y).", &t).is_err());
        assert!(parse_facts("p(X).", &t).is_err());
        assert!(parse_facts("p(1)", &t).is_err(), "missing final dot");
    }

    #[test]
    fn fact_reader_loads_into_database() {
        let mut db = crate::Database::new();
        let facts = parse_facts("q(1). q(2). q(1).", db.symbols()).unwrap();
        let mut by_pred: crate::fxhash::FxHashMap<_, Vec<Vec<Const>>> = Default::default();
        for (p, row) in facts {
            by_pred.entry(p).or_default().push(row);
        }
        let mut fresh = 0;
        for (p, rows) in by_pred {
            fresh += db.load_rows(p, &rows);
        }
        assert_eq!(fresh, 2, "duplicate fact deduped at load");
    }

    #[test]
    fn parse_facts_and_rules() {
        let t = SymbolTable::new();
        let prog = parse_program(
            r#"
            % transitive closure
            edge("a", "b").
            edge("b", "c").
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- edge(X, Y), tc(Y, Z).
            @output("tc").
            "#,
            &t,
        )
        .unwrap();
        assert_eq!(prog.facts.len(), 2);
        assert_eq!(prog.rules.len(), 2);
        assert_eq!(prog.outputs.len(), 1);
    }

    #[test]
    fn parse_negation_and_comparison() {
        let t = SymbolTable::new();
        let prog = parse_program(
            r#"
            p(X) :- q(X), not r(X), X > 3.
            "#,
            &t,
        )
        .unwrap();
        let rule = &prog.rules[0];
        assert_eq!(rule.body.len(), 3);
        assert!(matches!(rule.body[1], BodyItem::Neg(_)));
        assert!(matches!(rule.body[2], BodyItem::Cond(_)));
    }

    #[test]
    fn parse_skolem_assignment() {
        let t = SymbolTable::new();
        let prog = parse_program(
            r#"
            p(I, X) :- q(X), I = skolem("f1", X).
            "#,
            &t,
        )
        .unwrap();
        let rule = &prog.rules[0];
        assert!(matches!(
            &rule.body[1],
            BodyItem::Assign(_, Expr::Skolem(_, args)) if args.len() == 1
        ));
        assert!(rule.existential_vars().is_empty());
    }

    #[test]
    fn parse_constants() {
        let t = SymbolTable::new();
        let prog = parse_program(
            r#"k("s", <http://iri>, 42, -7, 2.5, true, false, null)."#,
            &t,
        )
        .unwrap();
        let (_, args) = &prog.facts[0];
        assert_eq!(args.len(), 8);
        assert!(matches!(args[0], Const::Str(_)));
        assert!(matches!(args[1], Const::Iri(_)));
        assert_eq!(args[2], Const::Int(42));
        assert_eq!(args[3], Const::Int(-7));
        assert_eq!(args[4], Const::Float(OrdF64(2.5)));
        assert_eq!(args[5], Const::Bool(true));
        assert_eq!(args[6], Const::Bool(false));
        assert_eq!(args[7], Const::Null);
    }

    #[test]
    fn parse_post_directives() {
        let t = SymbolTable::new();
        let prog = parse_program(
            r#"
            p("a").
            @output("p").
            @post("p", "orderby(0, 1 desc)").
            @post("p", "limit(5)").
            @post("p", "offset(2)").
            "#,
            &t,
        )
        .unwrap();
        assert_eq!(prog.post.len(), 3);
        assert_eq!(prog.post[0].1, PostOp::OrderBy(vec![(0, false), (1, true)]));
        assert_eq!(prog.post[1].1, PostOp::Limit(5));
        assert_eq!(prog.post[2].1, PostOp::Offset(2));
    }

    #[test]
    fn parse_count_aggregate() {
        let t = SymbolTable::new();
        let prog = parse_program(r#"cnt(G, C) :- q(G, X), C = count()."#, &t).unwrap();
        let rule = &prog.rules[0];
        assert!(rule.aggregate.is_some());
        assert_eq!(rule.body.len(), 1, "marker assignment removed");
    }

    #[test]
    fn errors() {
        let t = SymbolTable::new();
        assert!(parse_program("p(X.", &t).is_err());
        assert!(parse_program("p(X) :- q(X)", &t).is_err());
        assert!(parse_program("p(Y) :- .", &t).is_err());
        assert!(parse_program("@bogus(\"x\").", &t).is_err());
        assert!(parse_program("p(X).", &t).is_err(), "non-ground fact");
    }

    #[test]
    fn comments() {
        let t = SymbolTable::new();
        let prog = parse_program("% line comment\n// another\np(\"a\"). % trailing\n", &t).unwrap();
        assert_eq!(prog.facts.len(), 1);
    }

    #[test]
    fn equality_on_bound_constant_becomes_condition() {
        let t = SymbolTable::new();
        let prog = parse_program(r#"p(X) :- q(X), "a" = X."#, &t).unwrap();
        assert!(matches!(prog.rules[0].body[1], BodyItem::Cond(_)));
    }
}
