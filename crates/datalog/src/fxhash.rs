//! A fast, non-cryptographic hasher (the FxHash algorithm used by rustc).
//!
//! The Datalog fixpoint hashes tuples of constants billions of times on the
//! larger workloads; SipHash (std's default) is measurably slower there.
//! Implementing the ~30-line algorithm in-tree avoids a dependency on
//! `rustc-hash` (see DESIGN.md, "Additional dependencies").

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// `HashMap` for keys that are themselves high-quality 64-bit hashes
/// (e.g. the engine's precomputed row hashes): the "hasher" passes the
/// key through verbatim, so probes skip a hash round entirely and table
/// resizes become re-hash-free relocations. Keys **must** already be
/// well-mixed in their low bits (see `database::row_hash`'s finalizer) —
/// this is not a general-purpose integer map.
pub type PrehashedMap<V> = std::collections::HashMap<u64, V, BuildHasherDefault<PrehashedHasher>>;

/// The pass-through hasher behind [`PrehashedMap`].
#[derive(Default, Clone)]
pub struct PrehashedHasher {
    hash: u64,
}

impl Hasher for PrehashedHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PrehashedMap keys are u64 hashes");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = n;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher: a multiply-and-rotate word hash.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = FxHasher::default();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn unaligned_tail_bytes() {
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9]),
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10])
        );
    }
}
