//! Property-based tests of the Datalog± engine: the semi-naive fixpoint
//! against brute-force oracles on random inputs.

use proptest::prelude::*;
use sparqlog_datalog::{
    collect_output, evaluate, parser::parse_program, Const, Database, EvalOptions,
};

/// Brute-force transitive closure by repeated squaring over a set.
fn tc_oracle(edges: &[(u8, u8)]) -> std::collections::BTreeSet<(u8, u8)> {
    let mut closure: std::collections::BTreeSet<(u8, u8)> =
        edges.iter().copied().collect();
    loop {
        let mut added = false;
        let snapshot: Vec<(u8, u8)> = closure.iter().copied().collect();
        for &(x, y) in &snapshot {
            for &(y2, z) in &snapshot {
                if y == y2 && closure.insert((x, z)) {
                    added = true;
                }
            }
        }
        if !added {
            return closure;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Recursive fixpoint == brute-force closure on random graphs
    /// (including cycles and self-loops).
    #[test]
    fn transitive_closure_matches_oracle(
        edges in prop::collection::vec((0u8..12, 0u8..12), 1..40)
    ) {
        let mut src = String::new();
        for (x, y) in &edges {
            src.push_str(&format!("edge({x}, {y}).\n"));
        }
        src.push_str("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n@output(\"tc\").\n");
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let got: std::collections::BTreeSet<(u8, u8)> =
            collect_output(&prog, &db, db.symbols().get("tc").unwrap())
                .into_iter()
                .map(|t| {
                    let x = match t[0] { Const::Int(i) => i as u8, _ => panic!() };
                    let y = match t[1] { Const::Int(i) => i as u8, _ => panic!() };
                    (x, y)
                })
                .collect();
        prop_assert_eq!(got, tc_oracle(&edges));
    }

    /// Stratified negation == set difference.
    #[test]
    fn negation_matches_set_difference(
        a in prop::collection::btree_set(0u8..30, 0..20),
        b in prop::collection::btree_set(0u8..30, 0..20),
    ) {
        let mut src = String::new();
        for x in &a {
            src.push_str(&format!("a({x}).\n"));
        }
        for x in &b {
            src.push_str(&format!("b({x}).\n"));
        }
        src.push_str("diff(X) :- a(X), not b(X).\n@output(\"diff\").\n");
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let got: std::collections::BTreeSet<u8> =
            collect_output(&prog, &db, db.symbols().get("diff").unwrap())
                .into_iter()
                .map(|t| match t[0] { Const::Int(i) => i as u8, _ => panic!() })
                .collect();
        let want: std::collections::BTreeSet<u8> = a.difference(&b).copied().collect();
        prop_assert_eq!(got, want);
    }

    /// Join == nested-loop oracle, counting set semantics.
    #[test]
    fn binary_join_matches_oracle(
        r in prop::collection::btree_set((0u8..8, 0u8..8), 0..25),
        s_rel in prop::collection::btree_set((0u8..8, 0u8..8), 0..25),
    ) {
        let mut src = String::new();
        for (x, y) in &r {
            src.push_str(&format!("r({x}, {y}).\n"));
        }
        for (x, y) in &s_rel {
            src.push_str(&format!("s({x}, {y}).\n"));
        }
        src.push_str("j(X, Y, Z) :- r(X, Y), s(Y, Z).\n@output(\"j\").\n");
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let got = collect_output(&prog, &db, db.symbols().get("j").unwrap()).len();
        let want = r
            .iter()
            .flat_map(|&(x, y)| {
                s_rel.iter().filter(move |&&(y2, _)| y == y2).map(move |&(_, z)| (x, y, z))
            })
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        prop_assert_eq!(got, want);
    }

    /// Evaluation is deterministic and idempotent: re-running the program
    /// on the already-saturated database derives nothing new.
    #[test]
    fn fixpoint_is_idempotent(
        edges in prop::collection::vec((0u8..10, 0u8..10), 1..30)
    ) {
        let mut src = String::new();
        for (x, y) in &edges {
            src.push_str(&format!("edge({x}, {y}).\n"));
        }
        src.push_str("p(X, Y) :- edge(X, Y).\np(X, Z) :- edge(X, Y), p(Y, Z).\n@output(\"p\").\n");
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let first = collect_output(&prog, &db, db.symbols().get("p").unwrap()).len();
        let stats = evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let second = collect_output(&prog, &db, db.symbols().get("p").unwrap()).len();
        prop_assert_eq!(first, second);
        prop_assert_eq!(stats.derived, 0);
    }

    /// Skolem tuple IDs count derivations: projecting q(X, Y) onto X under
    /// bag semantics yields one ID per (X, Y) pair.
    #[test]
    fn skolem_ids_count_derivations(
        pairs in prop::collection::btree_set((0u8..6, 0u8..6), 1..20)
    ) {
        let mut src = String::new();
        for (x, y) in &pairs {
            src.push_str(&format!("q({x}, {y}).\n"));
        }
        src.push_str("p(I, X) :- q(X, Y), I = skolem(\"f\", X, Y).\n@output(\"p\").\n");
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let got = collect_output(&prog, &db, db.symbols().get("p").unwrap()).len();
        prop_assert_eq!(got, pairs.len());
    }
}
