//! Property-based tests of the Datalog± engine: the semi-naive fixpoint
//! against brute-force oracles on random inputs (in-tree deterministic
//! case generation — the workspace builds offline, without proptest).

use sparqlog_datalog::{
    collect_output, evaluate, parser::parse_program, Const, Database, EvalOptions, OrdF64,
    SymbolTable, TermDict,
};

/// Deterministic SplitMix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

const CASES: u64 = 64;

/// Brute-force transitive closure by repeated squaring over a set.
fn tc_oracle(edges: &[(u8, u8)]) -> std::collections::BTreeSet<(u8, u8)> {
    let mut closure: std::collections::BTreeSet<(u8, u8)> = edges.iter().copied().collect();
    loop {
        let mut added = false;
        let snapshot: Vec<(u8, u8)> = closure.iter().copied().collect();
        for &(x, y) in &snapshot {
            for &(y2, z) in &snapshot {
                if y == y2 && closure.insert((x, z)) {
                    added = true;
                }
            }
        }
        if !added {
            return closure;
        }
    }
}

fn random_pairs(rng: &mut Rng, max: u64, min_len: u64, max_len: u64) -> Vec<(u8, u8)> {
    let len = rng.range(min_len, max_len);
    (0..len)
        .map(|_| (rng.range(0, max) as u8, rng.range(0, max) as u8))
        .collect()
}

fn random_set(rng: &mut Rng, max: u64, max_len: u64) -> std::collections::BTreeSet<u8> {
    let len = rng.range(0, max_len);
    (0..len).map(|_| rng.range(0, max) as u8).collect()
}

/// Recursive fixpoint == brute-force closure on random graphs
/// (including cycles and self-loops).
#[test]
fn transitive_closure_matches_oracle() {
    let mut rng = Rng(0x7c01);
    for case in 0..CASES {
        let edges = random_pairs(&mut rng, 12, 1, 40);
        let mut src = String::new();
        for (x, y) in &edges {
            src.push_str(&format!("edge({x}, {y}).\n"));
        }
        src.push_str(
            "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n@output(\"tc\").\n",
        );
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let got: std::collections::BTreeSet<(u8, u8)> =
            collect_output(&prog, &db, db.symbols().get("tc").unwrap())
                .into_iter()
                .map(|t| {
                    let x = match t[0] {
                        Const::Int(i) => i as u8,
                        _ => panic!(),
                    };
                    let y = match t[1] {
                        Const::Int(i) => i as u8,
                        _ => panic!(),
                    };
                    (x, y)
                })
                .collect();
        assert_eq!(got, tc_oracle(&edges), "case {case}: {edges:?}");
    }
}

/// Stratified negation == set difference.
#[test]
fn negation_matches_set_difference() {
    let mut rng = Rng(0x0e6a);
    for case in 0..CASES {
        let a = random_set(&mut rng, 30, 20);
        let b = random_set(&mut rng, 30, 20);
        let mut src = String::new();
        for x in &a {
            src.push_str(&format!("a({x}).\n"));
        }
        for x in &b {
            src.push_str(&format!("b({x}).\n"));
        }
        src.push_str("diff(X) :- a(X), not b(X).\n@output(\"diff\").\n");
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let got: std::collections::BTreeSet<u8> =
            collect_output(&prog, &db, db.symbols().get("diff").unwrap())
                .into_iter()
                .map(|t| match t[0] {
                    Const::Int(i) => i as u8,
                    _ => panic!(),
                })
                .collect();
        let want: std::collections::BTreeSet<u8> = a.difference(&b).copied().collect();
        assert_eq!(got, want, "case {case}: a={a:?} b={b:?}");
    }
}

/// Join == nested-loop oracle, counting set semantics.
#[test]
fn binary_join_matches_oracle() {
    let mut rng = Rng(0x901f);
    for case in 0..CASES {
        let r: std::collections::BTreeSet<(u8, u8)> =
            random_pairs(&mut rng, 8, 0, 25).into_iter().collect();
        let s_rel: std::collections::BTreeSet<(u8, u8)> =
            random_pairs(&mut rng, 8, 0, 25).into_iter().collect();
        let mut src = String::new();
        for (x, y) in &r {
            src.push_str(&format!("r({x}, {y}).\n"));
        }
        for (x, y) in &s_rel {
            src.push_str(&format!("s({x}, {y}).\n"));
        }
        src.push_str("j(X, Y, Z) :- r(X, Y), s(Y, Z).\n@output(\"j\").\n");
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let got = collect_output(&prog, &db, db.symbols().get("j").unwrap()).len();
        let want = r
            .iter()
            .flat_map(|&(x, y)| {
                s_rel
                    .iter()
                    .filter(move |&&(y2, _)| y == y2)
                    .map(move |&(_, z)| (x, y, z))
            })
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert_eq!(got, want, "case {case}");
    }
}

/// Evaluation is deterministic and idempotent: re-running the program
/// on the already-saturated database derives nothing new.
#[test]
fn fixpoint_is_idempotent() {
    let mut rng = Rng(0x1de0);
    for case in 0..CASES {
        let edges = random_pairs(&mut rng, 10, 1, 30);
        let mut src = String::new();
        for (x, y) in &edges {
            src.push_str(&format!("edge({x}, {y}).\n"));
        }
        src.push_str("p(X, Y) :- edge(X, Y).\np(X, Z) :- edge(X, Y), p(Y, Z).\n@output(\"p\").\n");
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let first = collect_output(&prog, &db, db.symbols().get("p").unwrap()).len();
        let stats = evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let second = collect_output(&prog, &db, db.symbols().get("p").unwrap()).len();
        assert_eq!(first, second, "case {case}");
        assert_eq!(stats.derived, 0, "case {case}");
    }
}

/// A random constant, with Skolem terms nesting up to `depth` levels —
/// the generator behind the dictionary round-trip property.
fn random_const(rng: &mut Rng, symbols: &SymbolTable, depth: u64) -> Const {
    let variants = if depth == 0 { 9 } else { 10 };
    match rng.range(0, variants) {
        0 => Const::Null,
        1 => Const::Bool(rng.range(0, 2) == 1),
        // Mixes small inline integers with spill-table extremes.
        2 => Const::Int(rng.next() as i64 >> rng.range(0, 64)),
        3 => Const::Float(OrdF64(f64::from_bits(rng.next()))),
        4 => Const::Iri(symbols.intern(&format!("http://n/{}", rng.range(0, 20)))),
        5 => Const::Bnode(symbols.intern(&format!("b{}", rng.range(0, 10)))),
        6 => Const::Str(symbols.intern(&format!("s{}", rng.range(0, 20)))),
        7 => Const::LangStr(
            symbols.intern(&format!("lex{}", rng.range(0, 10))),
            symbols.intern(&format!("lang{}", rng.range(0, 4))),
        ),
        8 => Const::Typed(
            symbols.intern(&format!("lit{}", rng.range(0, 10))),
            symbols.intern(&format!("http://dt/{}", rng.range(0, 4))),
        ),
        _ => {
            let functor = symbols.intern(&format!("f{}", rng.range(0, 3)));
            let nargs = rng.range(0, 4);
            let args = (0..nargs)
                .map(|_| random_const(rng, symbols, depth - 1))
                .collect();
            Const::skolem(functor, args)
        }
    }
}

/// The dictionary is lossless and canonical on random constants of every
/// variant, including nested Skolem terms: `decode(encode(t)) == t`,
/// re-encoding is stable, and id equality coincides with structural
/// equality.
#[test]
fn dict_roundtrip_random_consts() {
    let symbols = SymbolTable::new();
    let dict = TermDict::new();
    let mut rng = Rng(0xd1c7);
    let mut pool: Vec<(Const, sparqlog_datalog::TermId)> = Vec::new();
    for case in 0..2_000u64 {
        let c = random_const(&mut rng, &symbols, 3);
        let id = dict.encode(&c);
        assert_eq!(dict.decode(id), c, "case {case}: {c:?}");
        assert_eq!(
            dict.encode(&c),
            id,
            "case {case}: unstable encoding of {c:?}"
        );
        // Id equality == structural equality against a sample of
        // previously seen terms.
        for (d, did) in pool.iter().take(40) {
            assert_eq!(*did == id, *d == c, "{d:?} vs {c:?}");
        }
        pool.push((c, id));
    }
}

/// Skolem tuple IDs count derivations: projecting q(X, Y) onto X under
/// bag semantics yields one ID per (X, Y) pair.
#[test]
fn skolem_ids_count_derivations() {
    let mut rng = Rng(0x5c03);
    for case in 0..CASES {
        let pairs: std::collections::BTreeSet<(u8, u8)> =
            random_pairs(&mut rng, 6, 1, 20).into_iter().collect();
        let mut src = String::new();
        for (x, y) in &pairs {
            src.push_str(&format!("q({x}, {y}).\n"));
        }
        src.push_str("p(I, X) :- q(X, Y), I = skolem(\"f\", X, Y).\n@output(\"p\").\n");
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let got = collect_output(&prog, &db, db.symbols().get("p").unwrap()).len();
        assert_eq!(got, pairs.len(), "case {case}");
    }
}
