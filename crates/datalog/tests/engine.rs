//! End-to-end tests of the Datalog± engine through the textual syntax.

use std::time::Duration;

use sparqlog_datalog::parser::parse_program;
use sparqlog_datalog::{
    check_wardedness, collect_output, evaluate, Database, EvalError, EvalOptions,
};

fn run(src: &str) -> (Database, sparqlog_datalog::Program) {
    let mut db = Database::new();
    let prog = parse_program(src, db.symbols()).unwrap();
    evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
    (db, prog)
}

fn output_strings(db: &Database, prog: &sparqlog_datalog::Program, pred: &str) -> Vec<Vec<String>> {
    let sym = db.symbols().get(pred).unwrap();
    collect_output(prog, db, sym)
        .into_iter()
        .map(|t| t.iter().map(|c| c.display(db.symbols())).collect())
        .collect()
}

#[test]
fn transitive_closure() {
    let (db, prog) = run(r#"
        edge("a", "b"). edge("b", "c"). edge("c", "d").
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- edge(X, Y), tc(Y, Z).
        @output("tc").
    "#);
    let mut out = output_strings(&db, &prog, "tc");
    out.sort();
    assert_eq!(out.len(), 6);
    assert!(out.contains(&vec!["\"a\"".to_string(), "\"d\"".to_string()]));
}

#[test]
fn transitive_closure_with_cycle_terminates() {
    let (db, prog) = run(r#"
        edge("a", "b"). edge("b", "c"). edge("c", "a").
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- edge(X, Y), tc(Y, Z).
        @output("tc").
    "#);
    // 3 nodes, complete reachability: 9 pairs.
    assert_eq!(output_strings(&db, &prog, "tc").len(), 9);
}

#[test]
fn stratified_negation() {
    let (db, prog) = run(r#"
        node("a"). node("b"). node("c").
        covered("a"). covered("b").
        uncovered(X) :- node(X), not covered(X).
        @output("uncovered").
    "#);
    let out = output_strings(&db, &prog, "uncovered");
    assert_eq!(out, vec![vec!["\"c\"".to_string()]]);
}

#[test]
fn negation_over_recursive_layer() {
    // unreachable = nodes with no path from "a".
    let (db, prog) = run(r#"
        edge("a", "b"). edge("b", "c"). edge("d", "e").
        node("a"). node("b"). node("c"). node("d"). node("e").
        reach("a").
        reach(Y) :- reach(X), edge(X, Y).
        unreachable(X) :- node(X), not reach(X).
        @output("unreachable").
    "#);
    let mut out = output_strings(&db, &prog, "unreachable");
    out.sort();
    assert_eq!(
        out,
        vec![vec!["\"d\"".to_string()], vec!["\"e\"".to_string()]]
    );
}

#[test]
fn skolem_ids_preserve_duplicates() {
    // Two different derivations of p("x") get distinct IDs — the paper's
    // duplicate-preservation model.
    let (db, prog) = run(r#"
        q("a"). q("b").
        p(I, "x") :- q(Y), I = skolem("f1", Y).
        @output("p").
    "#);
    let out = output_strings(&db, &prog, "p");
    assert_eq!(out.len(), 2, "two derivations, two tuple IDs");
}

#[test]
fn constant_id_collapses_duplicates() {
    // Forcing Id = the same skolem constant merges duplicates — how the
    // translation realises set semantics for recursive property paths.
    let (db, prog) = run(r#"
        q("a"). q("b").
        p(I, "x") :- q(Y), I = skolem("nil").
        @output("p").
    "#);
    let out = output_strings(&db, &prog, "p");
    assert_eq!(out.len(), 1);
}

#[test]
fn existential_head_variables_are_skolemised() {
    let (db, prog) = run(r#"
        person("alice").
        hasParent(X, Z) :- person(X).
        @output("hasParent").
    "#);
    let sym = db.symbols().get("hasParent").unwrap();
    let tuples = collect_output(&prog, &db, sym);
    assert_eq!(tuples.len(), 1);
    assert!(tuples[0][1].is_skolem(), "object is a labelled null");
}

#[test]
fn existential_chase_is_restricted() {
    // Re-deriving the same frontier yields the same labelled null, so the
    // fixpoint converges even with two rules deriving person facts.
    let (db, prog) = run(r#"
        person("alice").
        person("alice") .
        hasParent(X, Z) :- person(X).
        @output("hasParent").
    "#);
    let sym = db.symbols().get("hasParent").unwrap();
    assert_eq!(collect_output(&prog, &db, sym).len(), 1);
}

#[test]
fn cyclic_existentials_terminate_via_depth_bound() {
    let mut db = Database::new();
    let prog = parse_program(
        r#"
        person("alice").
        hasParent(X, Z) :- person(X).
        person(Y) :- hasParent(X, Y).
        @output("person").
        "#,
        db.symbols(),
    )
    .unwrap();
    let opts = EvalOptions {
        max_skolem_depth: 4,
        ..Default::default()
    };
    evaluate(&prog, &mut db, &opts).unwrap();
    let sym = db.symbols().get("person").unwrap();
    let n = collect_output(&prog, &db, sym).len();
    // alice + 4 generations of labelled nulls.
    assert_eq!(n, 5);
}

#[test]
fn comparisons_and_arithmetic() {
    let (db, prog) = run(r#"
        n(1). n(5). n(10).
        big(X) :- n(X), X > 4.
        sum(Z) :- n(X), n(Y), X < Y, Z = X + Y.
        @output("big").
        @output("sum").
    "#);
    assert_eq!(output_strings(&db, &prog, "big").len(), 2);
    // sums: 1+5, 1+10, 5+10 → 6, 11, 15
    let mut sums = output_strings(&db, &prog, "sum");
    sums.sort();
    assert_eq!(sums.len(), 3);
}

#[test]
fn count_aggregate() {
    let (db, prog) = run(r#"
        author("p1", "alice"). author("p1", "bob"). author("p2", "carol").
        nauthors(P, C) :- author(P, A), C = count().
        @output("nauthors").
    "#);
    let mut out = output_strings(&db, &prog, "nauthors");
    out.sort();
    assert_eq!(
        out,
        vec![
            vec!["\"p1\"".to_string(), "2".to_string()],
            vec!["\"p2\"".to_string(), "1".to_string()],
        ]
    );
}

#[test]
fn post_orderby_limit_offset() {
    let (db, prog) = run(r#"
        v(3). v(1). v(2). v(5). v(4).
        @output("v").
        @post("v", "orderby(0)").
        @post("v", "offset(1)").
        @post("v", "limit(2)").
    "#);
    let out = output_strings(&db, &prog, "v");
    assert_eq!(out, vec![vec!["2".to_string()], vec!["3".to_string()]]);
}

#[test]
fn post_orderby_desc() {
    let (db, prog) = run(r#"
        v(3). v(1). v(2).
        @output("v").
        @post("v", "orderby(0 desc)").
    "#);
    let out = output_strings(&db, &prog, "v");
    assert_eq!(
        out,
        vec![
            vec!["3".to_string()],
            vec!["2".to_string()],
            vec!["1".to_string()]
        ]
    );
}

#[test]
fn timeout_fires_on_explosive_join() {
    let mut db = Database::new();
    // A cross-product chain that generates far too many tuples.
    let mut src = String::new();
    for i in 0..2000 {
        src.push_str(&format!("n({i}).\n"));
    }
    src.push_str("pair(X, Y) :- n(X), n(Y).\nbig(X,Y,Z) :- pair(X,Y), n(Z).\n@output(\"big\").\n");
    let prog = parse_program(&src, db.symbols()).unwrap();
    let opts = EvalOptions {
        timeout: Some(Duration::from_millis(50)),
        ..Default::default()
    };
    let err = evaluate(&prog, &mut db, &opts).unwrap_err();
    assert_eq!(err, EvalError::Timeout);
}

#[test]
fn unsafe_negation_is_rejected() {
    let mut db = Database::new();
    let prog = parse_program(
        r#"p(X) :- not q(X), r(X)."#, // X unbound when `not q(X)` is checked
        db.symbols(),
    )
    .unwrap();
    let err = evaluate(&prog, &mut db, &EvalOptions::default()).unwrap_err();
    assert!(matches!(err, EvalError::Unsafe(_)));
}

#[test]
fn cyclic_negation_is_rejected() {
    let mut db = Database::new();
    let prog = parse_program(
        r#"
        p(X) :- base(X), not q(X).
        q(X) :- base(X), not p(X).
        base("a").
        "#,
        db.symbols(),
    )
    .unwrap();
    let err = evaluate(&prog, &mut db, &EvalOptions::default()).unwrap_err();
    assert!(matches!(err, EvalError::Stratification(_)));
}

#[test]
fn join_order_uses_indexes() {
    // A three-way join on a path: with index joins this is linear-ish.
    let mut src = String::new();
    for i in 0..300 {
        src.push_str(&format!("e({}, {}).\n", i, i + 1));
    }
    src.push_str("tri(X, W) :- e(X, Y), e(Y, Z), e(Z, W).\n@output(\"tri\").\n");
    let (db, prog) = run(&src);
    assert_eq!(output_strings(&db, &prog, "tri").len(), 298);
}

#[test]
fn paper_figure2_shape_runs() {
    // A hand-rolled version of Figure 2's OPTIONAL translation over the
    // film-directors graph of §3.1 (simplified arities).
    let (db, prog) = run(r#"
        triple("glucas", "name", "George", "g").
        triple("glucas", "lastname", "Lucas", "g").
        triple("b1", "name", "Steven", "g").

        term(X) :- triple(X, P, O, G).
        term(O) :- triple(X, P, O, G).
        null(null).
        comp(X, X, X) :- term(X).
        comp(X, Z, X) :- term(X), null(Z).
        comp(Z, X, X) :- term(X), null(Z).

        ans2(I, N, X, D) :- triple(X, "name", N, D), I = skolem("f2", X, N, D).
        ans3(I, L, X, D) :- triple(X, "lastname", L, D), I = skolem("f3", X, L, D).
        ansopt1(N, X, D) :- ans2(I2, N, X, D), ans3(I3, L, X2, D), comp(X, X2, X).
        ans1(I, L, N, X, D) :- ans2(I2, N, X, D), ans3(I3, L, X2, D), comp(X, X2, X),
                               I = skolem("f1a", X, N, L, I2, I3).
        ans1(I, L, N, X, D) :- ans2(I2, N, X, D), not ansopt1(N, X, D), L = null,
                               I = skolem("f1b", N, X, I2).
        ans(I, L, N, D) :- ans1(I1, L, N, X, D), I = skolem("f", L, N, X, I1).
        @output("ans").
        @post("ans", "orderby(2)").
    "#);
    let out = output_strings(&db, &prog, "ans");
    assert_eq!(out.len(), 2);
    // Ordered by name: George before Steven.
    assert_eq!(out[0][2], "\"George\"");
    assert_eq!(out[0][1], "\"Lucas\"");
    assert_eq!(out[1][2], "\"Steven\"");
    assert_eq!(out[1][1], "null");
}

#[test]
fn warded_report_on_translated_shape() {
    let db = Database::new();
    let prog = parse_program(
        r#"
        ans2(I, X) :- triple(X, "p", Y), I = skolem("f2", X, Y).
        ans1(I, X) :- ans2(I2, X), I = skolem("f1", X, I2).
        "#,
        db.symbols(),
    )
    .unwrap();
    let report = check_wardedness(&prog, db.symbols());
    assert!(report.warded, "{:?}", report.violations);
    // The ID positions are affected.
    let ans1 = db.symbols().get("ans1").unwrap();
    let ans2 = db.symbols().get("ans2").unwrap();
    assert!(report.affected.contains(&(ans1, 0)));
    assert!(report.affected.contains(&(ans2, 0)));
}

#[test]
fn idempotent_reevaluation() {
    let mut db = Database::new();
    let prog = parse_program(
        r#"
        edge("a", "b"). edge("b", "c").
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- edge(X, Y), tc(Y, Z).
        @output("tc").
        "#,
        db.symbols(),
    )
    .unwrap();
    evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
    let first = collect_output(&prog, &db, db.symbols().get("tc").unwrap()).len();
    let stats = evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
    let second = collect_output(&prog, &db, db.symbols().get("tc").unwrap()).len();
    assert_eq!(first, second);
    assert_eq!(stats.derived, 0, "second run derives nothing new");
}

#[test]
fn self_join_with_repeated_variable() {
    let (db, prog) = run(r#"
        e("a", "a"). e("a", "b"). e("b", "b").
        loop(X) :- e(X, X).
        @output("loop").
    "#);
    let mut out = output_strings(&db, &prog, "loop");
    out.sort();
    assert_eq!(
        out,
        vec![vec!["\"a\"".to_string()], vec!["\"b\"".to_string()]]
    );
}

#[test]
fn constants_in_head() {
    let (db, prog) = run(r#"
        q("x").
        p("const", X) :- q(X).
        @output("p").
    "#);
    let out = output_strings(&db, &prog, "p");
    assert_eq!(
        out,
        vec![vec!["\"const\"".to_string(), "\"x\"".to_string()]]
    );
}

// ------------------------------------------------- parallel evaluation

/// Evaluates `src` with an explicit worker count and returns the sorted,
/// decoded output of `pred`.
fn run_with_threads(src: &str, threads: usize, pred: &str) -> Vec<Vec<String>> {
    let mut db = Database::new();
    let prog = parse_program(src, db.symbols()).unwrap();
    let opts = EvalOptions {
        threads: Some(threads),
        ..Default::default()
    };
    evaluate(&prog, &mut db, &opts).unwrap();
    let mut out = output_strings(&db, &prog, pred);
    out.sort();
    out
}

/// A program exercising every feature the parallel passes must preserve:
/// recursion, multi-rule strata, stratified negation, assignments with
/// Skolem tuple IDs, filters and aggregation.
const PARALLEL_BATTERY: &[(&str, &str)] = &[
    (
        r#"
        edge(1, 2). edge(2, 3). edge(3, 1). edge(3, 4). edge(4, 5).
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- edge(X, Y), tc(Y, Z).
        @output("tc").
        "#,
        "tc",
    ),
    (
        r#"
        n(1). n(2). n(3). n(4).
        e(1, 2). e(2, 3).
        reach(1).
        reach(Y) :- reach(X), e(X, Y).
        isolated(X) :- n(X), not reach(X).
        @output("isolated").
        "#,
        "isolated",
    ),
    (
        r#"
        q(1). q(2). q(3).
        p(I, X) :- q(X), I = skolem("f", X).
        r(I, J) :- p(I, X), p(J, X), X > 1.
        @output("r").
        "#,
        "r",
    ),
    (
        r#"
        s(1, 10). s(1, 20). s(2, 30).
        total(K, C) :- s(K, V), C = count().
        @output("total").
        "#,
        "total",
    ),
    (
        r#"
        base(1). base(2).
        a(X) :- base(X).
        b(X) :- a(X).
        a(X) :- b(X), X > 1.
        both(X) :- a(X), b(X).
        @output("both").
        "#,
        "both",
    ),
];

#[test]
fn parallel_evaluation_matches_sequential() {
    for &(src, pred) in PARALLEL_BATTERY {
        let reference = run_with_threads(src, 1, pred);
        for threads in [2, 4, 8] {
            let got = run_with_threads(src, threads, pred);
            assert_eq!(
                got, reference,
                "threads={threads} diverged from sequential on output {pred}"
            );
        }
    }
}

#[test]
fn parallel_evaluation_is_deterministic_per_config() {
    let (src, pred) = PARALLEL_BATTERY[0];
    let a = run_with_threads(src, 4, pred);
    let b = run_with_threads(src, 4, pred);
    assert_eq!(a, b, "same thread count must reproduce identical results");
}

#[test]
fn parallel_timeout_still_fires() {
    let mut db = Database::new();
    let mut src = String::new();
    for i in 0..2000 {
        src.push_str(&format!("n({i}).\n"));
    }
    src.push_str("pair(X, Y) :- n(X), n(Y).\nbig(X,Y,Z) :- pair(X,Y), n(Z).\n@output(\"big\").\n");
    let prog = parse_program(&src, db.symbols()).unwrap();
    let opts = EvalOptions {
        timeout: Some(Duration::from_millis(50)),
        threads: Some(4),
        ..Default::default()
    };
    let err = evaluate(&prog, &mut db, &opts).unwrap_err();
    assert_eq!(err, EvalError::Timeout);
}

#[test]
fn parallel_partitioned_delta_matches_sequential() {
    // Wide-but-shallow closure whose first round's delta (3600 rows)
    // exceeds the executor's minimum partition size, so range-partitioned
    // jobs and the ordered merge are genuinely exercised — smaller
    // fixtures run a single job per delta occurrence.
    let mut src = String::new();
    for i in 0..900 {
        src.push_str(&format!("edge(0, {}).\n", 1000 + i));
        for j in 1..4 {
            src.push_str(&format!("edge({}, {j}).\n", 1000 + i));
        }
    }
    src.push_str("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n@output(\"tc\").\n");
    let reference = run_with_threads(&src, 1, "tc");
    assert_eq!(reference.len(), 3603, "3600 edges + 3 length-2 paths");
    for threads in [2, 4] {
        assert_eq!(run_with_threads(&src, threads, "tc"), reference);
    }
}

#[test]
fn profiler_reports_rules_rounds_and_probes() {
    // A recursive chain: the transitive closure takes one semi-naive
    // round per additional hop, so the profile must show a stratum with
    // several rounds of shrinking deltas and per-rule timings.
    let mut src = String::new();
    for i in 0..32 {
        src.push_str(&format!("edge(\"n{i}\", \"n{}\").\n", i + 1));
    }
    src.push_str(
        r#"
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- edge(X, Y), tc(Y, Z).
        @output("tc").
    "#,
    );
    let mut db = Database::new();
    let prog = parse_program(&src, db.symbols()).unwrap();
    let options = EvalOptions {
        profile: true,
        ..EvalOptions::default()
    };
    let stats = evaluate(&prog, &mut db, &options).unwrap();
    assert!(stats.probes > 0, "join probes are counted");
    assert_eq!(stats.stratum_elapsed.len(), stats.strata);

    let profile = stats.profile.as_deref().expect("profile armed");
    // Per-rule timings: the recursive rule ran jobs and derived rows.
    let recursive = profile
        .rules
        .iter()
        .find(|r| r.rule.contains("tc(X, Z)") || r.rule.contains("tc(X,Z)"))
        .expect("recursive rule profiled");
    assert!(recursive.jobs >= 2, "one job per semi-naive round at least");
    assert!(recursive.derived > 0);
    // Per-round delta sizes: round 0 is the naive pass; later rounds
    // carry non-empty input deltas that eventually shrink to nothing.
    let stratum = profile
        .strata
        .iter()
        .find(|s| !s.rounds.is_empty() && s.rounds.len() > 2)
        .expect("recursive stratum has rounds");
    assert_eq!(stratum.rounds[0].round, 0);
    assert!(stratum.rounds[1].delta_rows > 0);
    // Round sums account for every rule-derived row (stats.derived
    // additionally counts the program's own facts, loaded before the
    // strata run).
    let total_derived: usize = profile
        .strata
        .iter()
        .flat_map(|s| &s.rounds)
        .map(|r| r.derived)
        .sum();
    assert_eq!(total_derived, stats.derived - prog.facts.len());

    // Renderings: both forms exist and carry the key fields.
    let json = profile.to_json();
    assert!(json.contains("\"delta_rows\""));
    assert!(json.contains("\"rules\""));
    assert!(profile.render().contains("stratum 0"));

    // The unprofiled run derives the same facts and attaches nothing.
    let mut db2 = Database::new();
    let prog2 = parse_program(&src, db2.symbols()).unwrap();
    let plain = evaluate(&prog2, &mut db2, &EvalOptions::default()).unwrap();
    assert!(plain.profile.is_none());
    assert_eq!(plain.derived, stats.derived);
}
