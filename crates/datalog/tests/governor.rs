//! Integration tests for the execution governor (PR 7): deadlines,
//! derived-row caps, dictionary-growth caps and external cancellation,
//! exercised through public `evaluate` at several thread counts.

use std::time::{Duration, Instant};

use sparqlog_datalog::parser::parse_program;
use sparqlog_datalog::{
    collect_output, evaluate, AbortReason, Budget, CancelToken, Database, EvalError, EvalOptions,
};

/// A directed cycle of `n` nodes plus the transitive-closure program:
/// full reachability, `n * n` closure tuples — plenty of rounds and
/// emissions for the governor to interrupt.
fn tc_cycle(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("edge(\"n{i}\", \"n{}\").\n", (i + 1) % n));
    }
    src.push_str("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n@output(\"tc\").\n");
    src
}

fn eval_tc(n: usize, options: &EvalOptions) -> Result<usize, EvalError> {
    let mut db = Database::new();
    let prog = parse_program(&tc_cycle(n), db.symbols()).unwrap();
    evaluate(&prog, &mut db, options)?;
    let tc = db.symbols().get("tc").unwrap();
    Ok(collect_output(&prog, &db, tc).len())
}

/// Acceptance criterion: TC over a 300-node cycle under a 1 ms deadline
/// aborts within 50 ms — at one thread and at the default thread count —
/// and the very next (unbudgeted) evaluation in the same process is
/// complete and correct, proving the pool workers rejoined cleanly.
#[test]
fn deadline_aborts_tc_300_cycle_within_50ms() {
    for threads in [Some(1), None] {
        let options = EvalOptions {
            threads,
            budget: Budget::new().with_timeout(Duration::from_millis(1)),
            ..Default::default()
        };
        let start = Instant::now();
        let err = eval_tc(300, &options).unwrap_err();
        let waited = start.elapsed();
        match err {
            EvalError::Aborted {
                reason: AbortReason::Deadline,
                elapsed,
                ..
            } => {
                assert!(
                    waited < Duration::from_millis(50),
                    "abort took {waited:?} at threads {threads:?}"
                );
                assert!(elapsed <= waited, "reported elapsed exceeds wall clock");
            }
            other => panic!("expected deadline abort, got {other:?}"),
        }
        // Workers rejoined; the same process evaluates to completion.
        let clean = EvalOptions {
            threads,
            ..Default::default()
        };
        assert_eq!(eval_tc(300, &clean).unwrap(), 300 * 300);
    }
}

/// Property: a row-cap abort lands within one emission batch of the cap.
/// `rows_derived` counts merged rows plus staged candidates, and every
/// worker aborts on its first emission past the cap, so the overshoot is
/// bounded by the number of workers.
#[test]
fn row_cap_abort_is_within_one_batch_of_cap() {
    for threads in [1usize, 2, 4] {
        for cap in [500usize, 2_000, 8_000] {
            let options = EvalOptions {
                threads: Some(threads),
                budget: Budget::new().with_max_rows(cap),
                ..Default::default()
            };
            match eval_tc(300, &options).unwrap_err() {
                EvalError::Aborted {
                    reason: AbortReason::RowLimit,
                    rows_derived,
                    ..
                } => {
                    assert!(
                        rows_derived > cap,
                        "abort before the cap: {rows_derived} <= {cap} (threads {threads})"
                    );
                    assert!(
                        rows_derived <= cap + threads,
                        "overshoot past one batch: {rows_derived} > {cap} + {threads}"
                    );
                }
                other => panic!("expected row-limit abort, got {other:?}"),
            }
        }
    }
}

/// A cap generous enough for the whole evaluation never trips.
#[test]
fn row_cap_above_fixpoint_size_does_not_trip() {
    let options = EvalOptions {
        budget: Budget::new().with_max_rows(1_000_000),
        ..Default::default()
    };
    assert_eq!(eval_tc(60, &options).unwrap(), 60 * 60);
}

/// An already-cancelled token aborts before any work is done.
#[test]
fn pre_cancelled_token_aborts_immediately() {
    let cancel = CancelToken::new();
    cancel.cancel();
    let options = EvalOptions {
        budget: Budget::new().with_cancel(cancel),
        ..Default::default()
    };
    match eval_tc(60, &options).unwrap_err() {
        EvalError::Aborted {
            reason: AbortReason::Cancelled,
            rows_derived,
            ..
        } => assert!(
            // Like `EvalStats::derived`, the count includes the base
            // facts; the entry check fires before any closure tuple.
            rows_derived <= 60,
            "closure work happened before the entry check: {rows_derived}"
        ),
        other => panic!("expected cancellation, got {other:?}"),
    }
}

/// Cancelling from another thread interrupts a running evaluation.
#[test]
fn cancel_from_another_thread_interrupts_evaluation() {
    let cancel = CancelToken::new();
    let canceller = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            cancel.cancel();
        })
    };
    let options = EvalOptions {
        threads: Some(2),
        budget: Budget::new().with_cancel(cancel),
        ..Default::default()
    };
    // Big enough that evaluation is still running when the flag flips
    // (full closure would be 640_000 tuples); abort must follow quickly.
    let start = Instant::now();
    let err = eval_tc(800, &options).unwrap_err();
    canceller.join().unwrap();
    assert!(
        matches!(
            err,
            EvalError::Aborted {
                reason: AbortReason::Cancelled,
                ..
            }
        ),
        "expected cancellation, got {err:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(5));
}

/// The dictionary-growth cap trips on a query that interns unboundedly
/// many fresh Skolem terms.
#[test]
fn dict_growth_cap_aborts_skolem_flood() {
    let mut db = Database::new();
    let mut src = String::new();
    for i in 0..20_000 {
        src.push_str(&format!("q(\"v{i}\").\n"));
    }
    src.push_str("r(I, X) :- q(X), I = skolem(\"g\", X).\n@output(\"r\").\n");
    let prog = parse_program(&src, db.symbols()).unwrap();
    let options = EvalOptions {
        budget: Budget::new().with_max_dict_growth(100),
        ..Default::default()
    };
    match evaluate(&prog, &mut db, &options).unwrap_err() {
        EvalError::Aborted {
            reason: AbortReason::DictGrowth,
            ..
        } => {}
        other => panic!("expected dictionary-growth abort, got {other:?}"),
    }
}

/// A governed evaluation whose limits never trip (here: an idle cancel
/// token) produces exactly the same results as an ungoverned one.
#[test]
fn idle_governor_changes_nothing() {
    let governed = EvalOptions {
        budget: Budget::new().with_cancel(CancelToken::new()),
        ..Default::default()
    };
    assert_eq!(
        eval_tc(60, &governed).unwrap(),
        eval_tc(60, &EvalOptions::default()).unwrap()
    );
}

/// The deadline also governs the magic-sets path (including its nested
/// demand-measurement fixpoint, which inherits the already-armed budget
/// rather than restarting the clock).
#[test]
fn deadline_governs_magic_sets_path() {
    let mut db = Database::new();
    let mut src = String::new();
    for i in 0..300 {
        src.push_str(&format!("edge(\"n{i}\", \"n{}\").\n", (i + 1) % 300));
    }
    src.push_str(concat!(
        "tc(X, Y) :- edge(X, Y).\n",
        "tc(X, Z) :- edge(X, Y), tc(Y, Z).\n",
        "q(Y) :- tc(\"n0\", Y).\n",
        "@output(\"q\").\n"
    ));
    let prog = parse_program(&src, db.symbols()).unwrap();
    let options = EvalOptions {
        magic_sets: true,
        budget: Budget::new().with_timeout(Duration::from_millis(1)),
        ..Default::default()
    };
    let start = Instant::now();
    match evaluate(&prog, &mut db, &options).unwrap_err() {
        EvalError::Aborted {
            reason: AbortReason::Deadline,
            ..
        } => assert!(start.elapsed() < Duration::from_millis(50)),
        other => panic!("expected deadline abort, got {other:?}"),
    }
}

/// The legacy `EvalOptions::timeout` keeps its distinct error so existing
/// callers matching on `EvalError::Timeout` are unaffected.
#[test]
fn legacy_timeout_error_is_preserved() {
    let options = EvalOptions {
        timeout: Some(Duration::from_millis(1)),
        ..Default::default()
    };
    assert_eq!(eval_tc(300, &options).unwrap_err(), EvalError::Timeout);
}
