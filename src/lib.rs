//! Umbrella crate re-exporting the whole SparqLog reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests in
//! `tests/` and the runnable examples in `examples/`. Library users should
//! depend on the individual crates (most importantly [`sparqlog`]).

pub use sparqlog;
pub use sparqlog_benchdata as benchdata;
pub use sparqlog_datalog as datalog;
pub use sparqlog_rdf as rdf;
pub use sparqlog_refengine as refengine;
pub use sparqlog_sparql as sparql;
