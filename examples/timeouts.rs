//! The execution governor: deadlines, row caps and external cancellation
//! for runaway queries.
//!
//! A production endpoint cannot let one pathological query wedge a worker
//! forever. SparqLog's [`Budget`] bounds an evaluation by wall-clock
//! time, derived rows, or dictionary growth, and/or hooks it to a
//! [`CancelToken`]; a query that crosses a limit returns a structured
//! `Aborted` error telling you which limit tripped and how far execution
//! got — and the store keeps serving as if nothing happened.
//!
//! ```sh
//! cargo run --example timeouts
//! ```

use std::time::{Duration, Instant};

use sparqlog::{Budget, CancelToken, SparqLogError, Store};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A ring with shortcuts: the full transitive closure over it is big
    // enough to play the "runaway query" here.
    let mut turtle = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..400 {
        turtle.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i + 1) % 400));
        if i % 5 == 0 {
            turtle.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i * 7 + 3) % 400));
        }
    }
    let store = Store::new();
    store.load_turtle(&turtle)?;
    println!("loaded: {} facts", store.fact_count());

    let runaway = "PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:next+ ?b }";

    // 1. Deadline: give the query 2 ms of wall-clock time.
    let budget = Budget::new().with_timeout(Duration::from_millis(2));
    let start = Instant::now();
    match store.execute_with_budget(runaway, &budget) {
        Err(e @ SparqLogError::Aborted { .. }) => {
            println!("deadline: {e}");
            println!("          (observed after {:?})", start.elapsed());
        }
        other => println!("deadline: unexpectedly {other:?}"),
    }

    // 2. Row cap: bound the work (and intermediate-result memory) instead
    //    of the clock — deterministic across machines.
    match store.execute_with_budget(runaway, &Budget::new().with_max_rows(10_000)) {
        Err(SparqLogError::Aborted {
            reason,
            rows_derived,
            ..
        }) => println!("row cap:  {reason} at {rows_derived} rows"),
        other => println!("row cap:  unexpectedly {other:?}"),
    }

    // 3. External cancellation: a token shared with another thread — the
    //    shape of a client disconnect handler.
    let cancel = CancelToken::new();
    let killer = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            cancel.cancel(); // "client went away"
        })
    };
    match store.execute_with_budget(runaway, &Budget::new().with_cancel(cancel)) {
        Err(SparqLogError::Aborted { reason, .. }) => println!("cancel:   {reason}"),
        other => println!("cancel:   unexpectedly {other:?}"),
    }
    killer.join().unwrap();

    // 4. A store-wide default policy: every query (and every query of a
    //    batch) runs under it unless a call-site budget overrides it.
    store.set_default_budget(
        Budget::new()
            .with_timeout(Duration::from_secs(30))
            .with_max_rows(5_000),
    );
    let results = store.execute_batch(&[runaway, runaway, runaway]);
    let aborted = results.iter().filter(|r| r.is_err()).count();
    println!("batch under default budget: {aborted}/3 aborted");

    // Nothing is poisoned: lift the default and the same query completes.
    store.set_default_budget(Budget::new());
    let full = store.execute(runaway)?;
    println!("without limits: {} result rows", full.len());
    Ok(())
}
