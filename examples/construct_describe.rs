//! The graph-producing query forms and the typed results API:
//! `CONSTRUCT`, `DESCRIBE`, prepared queries, and the W3C wire formats
//! (Results-JSON / CSV / TSV for solutions, N-Triples / Turtle for
//! graphs).
//!
//! ```sh
//! cargo run --example construct_describe
//! ```

use sparqlog::{QueryResults, Store};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = Store::new();
    store.load_turtle(
        r#"
        @prefix ex: <http://ex.org/> .
        ex:spain ex:borders ex:france .
        ex:france ex:borders ex:belgium .
        ex:belgium ex:borders ex:germany .
        ex:spain ex:name "Spain" ; ex:capital _:m .
        _:m ex:name "Madrid" ; ex:population 3300000 .
        "#,
    )?;

    // CONSTRUCT instantiates its template once per WHERE solution and
    // returns an RDF graph (QueryResults::Graph).
    let reversed = store.execute(
        "PREFIX ex: <http://ex.org/>
         CONSTRUCT { ?b ex:borderedBy ?a } WHERE { ?a ex:borders ?b }",
    )?;
    println!("CONSTRUCT, as Turtle:\n{}", reversed.to_turtle()?);

    // DESCRIBE returns the concise bounded description of a resource:
    // its outgoing triples, closed over blank-node objects (_:m here).
    let spain = store.execute("DESCRIBE <http://ex.org/spain>")?;
    println!("DESCRIBE ex:spain, as N-Triples:\n{}", spain.to_ntriples()?);

    // Prepared queries: parse + translate once, execute on any snapshot
    // of this store — commits don't invalidate the handle.
    let prepared = store.prepare(
        "PREFIX ex: <http://ex.org/>
         SELECT ?place ?name WHERE { ?place ex:name ?name }",
    )?;
    let before = store.snapshot().execute_prepared(&prepared)?;
    store.update(
        r#"PREFIX ex: <http://ex.org/>
           INSERT DATA { ex:france ex:name "France" }"#,
    )?;
    let after = store.snapshot().execute_prepared(&prepared)?;
    println!(
        "prepared query: {} names before the commit, {} after",
        before.len(),
        after.len()
    );

    // Solutions serialize to the W3C result formats.
    println!("\nResults-JSON:\n{}", after.to_json()?);
    println!("\nCSV:\n{}", after.to_csv()?);
    println!("TSV:\n{}", after.to_tsv()?);

    // The typed enum makes the form explicit.
    match store.execute("PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ex:france }")? {
        QueryResults::Boolean(b) => println!("ASK says: {b}"),
        other => println!("unexpected result form: {other:?}"),
    }
    Ok(())
}
