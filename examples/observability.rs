//! Observability tour (PR 10): the metrics registry every store carries,
//! the Prometheus text exposition that `GET /metrics` serves, and the
//! per-query `EXPLAIN ANALYZE`-style profiler.
//!
//! ```sh
//! cargo run --example observability
//! ```

use sparqlog::{Budget, MetricsRegistry, SparqLogError, Store};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A ring with shortcuts: recursive closure over it is expensive
    // enough to show up in the histograms and to trip a row cap.
    let mut turtle = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..200 {
        turtle.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i + 1) % 200));
        if i % 5 == 0 {
            turtle.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i * 7 + 3) % 200));
        }
    }
    let store = Store::new();
    store.load_turtle(&turtle)?;
    println!("loaded: {} facts", store.fact_count());

    // Every store owns a MetricsRegistry; each layer (eval, planner,
    // store, governor, subscriptions, HTTP) records into it. The same
    // registry backs `GET /metrics` when the store is served.
    let reg = store.metrics();

    // 1. Normal queries move the query counters and histograms.
    let hop = "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:n0 ex:next ?b }";
    let closure = "PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:next+ ?b }";
    let snapshot = store.snapshot();
    for _ in 0..3 {
        snapshot.execute(hop)?;
    }
    println!(
        "queries completed: {}",
        reg.counter_value("sparqlog_queries_total").unwrap()
    );
    println!(
        "rows derived by fixpoints: {}",
        reg.counter_value("sparqlog_eval_rows_derived_total")
            .unwrap()
    );

    // 2. Governor aborts are counted by reason.
    match store.execute_with_budget(closure, &Budget::new().with_max_rows(1_000)) {
        Err(SparqLogError::Aborted { reason, .. }) => println!("aborted: {reason}"),
        other => println!("unexpectedly {other:?}"),
    }
    println!(
        "aborts recorded: {}",
        reg.counter_vec_sum("sparqlog_query_aborts_total").unwrap()
    );

    // 3. Commits record latency and row deltas.
    store.update("PREFIX ex: <http://ex.org/> INSERT DATA { ex:n0 ex:label \"origin\" }")?;
    println!(
        "commits: {}, rows added: {}",
        reg.counter_value("sparqlog_store_commits_total").unwrap(),
        reg.counter_value("sparqlog_store_rows_added_total")
            .unwrap()
    );

    // 4. The scrape: Prometheus text exposition, exactly what
    //    `GET /metrics` streams. Render it and spot-check a few lines.
    let exposition = reg.render_to_string();
    let samples = MetricsRegistry::parse_exposition(&exposition).expect("valid exposition");
    println!("\nexposition: {} samples; a few of them:", samples.len());
    for line in exposition.lines().filter(|l| {
        l.starts_with("sparqlog_queries_total") || l.starts_with("sparqlog_query_aborts")
    }) {
        println!("  {line}");
    }

    // 5. The per-query profiler: per-stratum rounds, per-round delta
    //    sizes, per-rule timings — the paper's timing breakdowns, live.
    let (results, profile) = store.snapshot().execute_profiled(closure)?;
    println!("\nclosure: {} rows; profile:", results.len());
    println!("{}", profile.render());
    Ok(())
}
