//! Direct use of the Warded Datalog± substrate: textual rules, recursion,
//! Skolem tuple IDs and stratified negation — the Vadalog-style engine
//! the SPARQL translation runs on.
//!
//! ```sh
//! cargo run --example datalog_playground
//! ```

use sparqlog_datalog::{collect_output, evaluate, parser::parse_program, Database, EvalOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    let program = parse_program(
        r#"
        % A little supply-chain reachability problem.
        supplies("mill", "bakery").
        supplies("farm", "mill").
        supplies("bakery", "cafe").
        supplies("roaster", "cafe").
        certified("farm").
        certified("roaster").

        upstream(X, Y) :- supplies(X, Y).
        upstream(X, Z) :- supplies(X, Y), upstream(Y, Z).

        % Who serves the cafe through an entirely certified chain root?
        uncertified_root(X) :- upstream(X, "cafe"), not certified(X).

        @output("upstream").
        @output("uncertified_root").
        @post("upstream", "orderby(0)").
        "#,
        db.symbols(),
    )?;

    let stats = evaluate(&program, &mut db, &EvalOptions::default())?;
    println!(
        "fixpoint: {} facts derived in {} rounds across {} strata",
        stats.derived, stats.rounds, stats.strata
    );

    for name in ["upstream", "uncertified_root"] {
        let pred = db.symbols().get(name).unwrap();
        println!("\n{name}:");
        for t in collect_output(&program, &db, pred) {
            let row: Vec<String> = t.iter().map(|c| c.display(db.symbols())).collect();
            println!("  ({})", row.join(", "));
        }
    }
    Ok(())
}
