//! The paper's running example (§3.1, Figures 1 & 2): film directors with
//! an OPTIONAL last name, plus a look at the generated Datalog± program.
//!
//! ```sh
//! cargo run --example film_directors
//! ```

use sparqlog::SparqLog;
use sparqlog_sparql::parse_query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = SparqLog::new();
    engine.load_turtle(
        r#"
        @prefix ex: <http://ex.org/> .
        ex:glucas ex:name "George" ;
                  ex:lastname "Lucas" .
        _:b1 ex:name "Steven" .
        "#,
    )?;

    let query_text = r#"
        PREFIX ex: <http://ex.org/>
        SELECT ?N ?L
        WHERE { ?X ex:name ?N . OPTIONAL { ?X ex:lastname ?L } }
        ORDER BY ?N
    "#;

    // Show the translated Datalog± rules — the analogue of Figure 2.
    let query = parse_query(query_text)?;
    let translated = engine.translate(&query)?;
    println!("--- generated Datalog± program (cf. paper Figure 2) ---");
    println!("{}", translated.program.display(engine.symbols()));

    let result = engine.execute(query_text)?;
    let s = result.solutions().expect("SELECT query");
    println!("--- solutions ---");
    println!("{s}");
    assert_eq!(s.len(), 2);
    Ok(())
}
