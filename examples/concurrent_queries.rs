//! Concurrent query serving over a frozen snapshot: load once, freeze,
//! then answer a flood of read-only queries from many threads — the
//! query-log-shaped workload the mutable single-session engine cannot
//! serve.
//!
//! ```sh
//! cargo run --example concurrent_queries
//! ```

use std::time::Instant;

use sparqlog::SparqLog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Mutate phase: load a synthetic social graph and materialise.
    let mut turtle = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..200 {
        turtle.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i + 1) % 200));
        if i % 7 == 0 {
            turtle.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i * 3 + 2) % 200));
        }
        if i % 10 == 0 {
            turtle.push_str(&format!("ex:p{i} ex:name \"person {i}\" .\n"));
        }
    }
    let mut engine = SparqLog::new();
    engine.load_turtle(&turtle)?;
    println!(
        "loaded + materialised: {} facts",
        engine.database().fact_count()
    );

    // Query phase: freeze. From here on everything is `&self`.
    let frozen = engine.freeze();

    // A "query log": a few shapes, many repetitions — the repetitions hit
    // the translation cache and skip the SPARQL→Datalog pipeline.
    let shapes = [
        "PREFIX ex: <http://ex.org/>
         SELECT ?b WHERE { ?a ex:knows ?b . ?a ex:name ?n }",
        "PREFIX ex: <http://ex.org/>
         SELECT ?z WHERE { ex:p0 ex:knows+ ?z }",
        "PREFIX ex: <http://ex.org/> ASK { ex:p7 ex:knows ex:p8 }",
        "PREFIX ex: <http://ex.org/>
         SELECT DISTINCT ?n WHERE { ?a ex:name ?n }",
    ];
    let log: Vec<&str> = (0..40).map(|i| shapes[i % shapes.len()]).collect();

    // Serve the whole log as one batch across the worker pool; results
    // come back in input order.
    let t0 = Instant::now();
    let results = frozen.execute_batch(&log);
    let batch_time = t0.elapsed();
    let answered = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "batch: {answered}/{} queries in {batch_time:?} \
         ({} distinct translations cached)",
        log.len(),
        frozen.cached_translations(),
    );

    // Or serve ad hoc from plain threads — `&frozen` is all they need.
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|k| {
                let frozen = &frozen;
                s.spawn(move || {
                    let mine = shapes[k % shapes.len()];
                    frozen.execute(mine).map(|r| r.len())
                })
            })
            .collect();
        for (k, w) in workers.into_iter().enumerate() {
            println!("thread {k}: {} solutions", w.join().unwrap()?);
        }
        Ok::<(), sparqlog::SparqLogError>(())
    })?;

    // Sanity: the batch answers equal fresh sequential answers.
    let check = frozen.execute(shapes[1])?;
    assert_eq!(results[1].as_ref().unwrap(), &check);
    println!("sequential re-check: identical results");
    Ok(())
}
