//! Serving a store over the SPARQL 1.1 Protocol.
//!
//! Boots an HTTP endpoint on a loopback port, then plays a whole client
//! session against it: content-negotiated queries in several wire
//! formats, an update that becomes visible to the next query, and a
//! budgeted runaway query that comes back `408` while the server keeps
//! serving. Everything is plain HTTP — each step prints the equivalent
//! `curl` invocation.
//!
//! ```sh
//! cargo run --example http_server
//! ```
//!
//! Pass `--serve [addr]` to skip the demo client and serve until killed
//! (default `127.0.0.1:3030`) — this is what the CI boot smoke does:
//!
//! ```sh
//! cargo run --example http_server -- --serve 127.0.0.1:3030
//! ```

use std::sync::Arc;
use std::time::Duration;

use sparqlog::Store;
use sparqlog_http::{client, ServerConfig, SparqlServer};

/// A small social graph plus a shortcut ring (the ring makes `ex:next+`
/// expensive enough to demonstrate request budgets).
fn demo_store() -> Store {
    let mut turtle = String::from(
        r#"@prefix ex: <http://ex.org/> .
           ex:alice ex:name "Alice" ; ex:knows ex:bob .
           ex:bob   ex:name "Bob"   ; ex:knows ex:carol .
           ex:carol ex:name "Carol" .
        "#,
    );
    for i in 0..300 {
        turtle.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i + 1) % 300));
        if i % 7 == 0 {
            turtle.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i * 3 + 1) % 300));
        }
    }
    let store = Store::new();
    store.load_turtle(&turtle).expect("demo data parses");
    store
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--serve") {
        let addr = args
            .iter()
            .skip_while(|a| *a != "--serve")
            .nth(1)
            .map(String::as_str)
            .unwrap_or("127.0.0.1:3030");
        let bound = SparqlServer::new(Arc::new(demo_store())).bind(addr)?;
        println!("serving SPARQL protocol on http://{}", bound.local_addr()?);
        println!(
            "  curl 'http://{addr}/query?query=SELECT%20*%20WHERE%20%7B%3Fs%20%3Fp%20%3Fo%7D'"
        );
        bound.serve(); // blocks until killed
        return Ok(());
    }

    // Demo mode: serve on an ephemeral port in the background and act as
    // our own client.
    let config = ServerConfig {
        default_timeout: Some(Duration::from_secs(5)),
        ..ServerConfig::default()
    };
    let bound = SparqlServer::with_config(Arc::new(demo_store()), config).bind("127.0.0.1:0")?;
    let addr = bound.local_addr()?;
    let handle = bound.handle()?;
    let server = std::thread::spawn(move || bound.serve());
    println!("serving on http://{addr}\n");

    // 1. A SELECT, negotiated to SPARQL Results JSON (the default).
    let select = r#"PREFIX ex: <http://ex.org/>
        SELECT ?name WHERE { ?p ex:name ?name } ORDER BY ?name"#;
    println!("-- SELECT as JSON (curl 'http://{addr}/query?query=…')");
    let r = client::query(addr, select, None)?;
    println!(
        "   {} {}: {}",
        r.status,
        r.header("content-type").unwrap_or(""),
        r.text()?
    );

    // 2. The same query as CSV, via the Accept header.
    println!("-- the same SELECT as CSV (curl -H 'Accept: text/csv' …)");
    let r = client::query(addr, select, Some("text/csv"))?;
    print!("   {}: {}", r.status, r.text()?.replace('\n', "\n   "));
    println!();

    // 3. A CONSTRUCT, streamed out as Turtle.
    let construct = r#"PREFIX ex: <http://ex.org/>
        CONSTRUCT { ?a ex:knows ?b } WHERE { ?a ex:knows ?b }"#;
    println!("-- CONSTRUCT as Turtle (curl -H 'Accept: text/turtle' …)");
    let r = client::query(addr, construct, Some("text/turtle"))?;
    print!("   {}: {}", r.status, r.text()?.replace('\n', "\n   "));
    println!();

    // 4. An update (POST /update), then proof the next query sees it.
    let insert = r#"PREFIX ex: <http://ex.org/>
        INSERT DATA { ex:dave ex:name "Dave" ; ex:knows ex:alice }"#;
    println!("-- INSERT DATA (curl -X POST -H 'Content-Type: application/sparql-update' --data … http://{addr}/update)");
    let r = client::update(addr, insert)?;
    println!("   {} (update commits answer 204 No Content)", r.status);
    let r = client::query(addr, select, Some("text/csv"))?;
    println!(
        "   next query sees Dave: {:?}",
        r.text()?.lines().collect::<Vec<_>>()
    );

    // 5. A runaway query under a 1 ms budget: 408, and the server keeps
    //    serving afterwards.
    let runaway = r#"PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:next+ ?b }"#;
    let target = format!(
        "/query?query={}&timeout=1",
        sparqlog_http::percent_encode(runaway)
    );
    println!("-- runaway transitive closure with timeout=1 (ms)");
    let r = client::fetch(addr, "GET", &target, &[], None)?;
    println!("   {} {}", r.status, r.text()?.trim());
    let r = client::query(addr, "ASK { ?s ?p ?o }", None)?;
    println!(
        "   server unaffected, next request: {} {}",
        r.status,
        r.text()?
    );

    handle.shutdown();
    server.join().expect("server thread");
    println!("\nserver stopped.");
    Ok(())
}
