//! Ontological reasoning (requirement RQ3): RDFS hierarchies and an
//! existential OWL 2 QL axiom, answered uniformly with queries — "we also
//! get ontological reasoning for free" (paper §1).
//!
//! ```sh
//! cargo run --example ontology_reasoning
//! ```

use sparqlog::{Axiom, Ontology, SparqLog};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = SparqLog::new();
    engine.load_turtle(
        r#"
        @prefix ex: <http://ex.org/> .
        @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
        ex:art1 rdf:type ex:Article ; ex:cites ex:art2 .
        ex:art2 rdf:type ex:Article .
        ex:alice rdf:type ex:Person .
        "#,
    )?;

    let onto = Ontology::new()
        .with(Axiom::SubClassOf(
            "http://ex.org/Article".into(),
            "http://ex.org/Publication".into(),
        ))
        .with(Axiom::SubClassOf(
            "http://ex.org/Publication".into(),
            "http://ex.org/Document".into(),
        ))
        .with(Axiom::SubPropertyOf(
            "http://ex.org/cites".into(),
            "http://ex.org/references".into(),
        ))
        // Every person has a parent who is a person — genuine object
        // invention via Warded Datalog± existentials.
        .with(Axiom::SomeValuesFrom {
            class: "http://ex.org/Person".into(),
            property: "http://ex.org/hasParent".into(),
            filler: "http://ex.org/Person".into(),
        });
    engine.add_ontology(&onto)?;

    let docs =
        engine.execute("PREFIX ex: <http://ex.org/> SELECT ?d WHERE { ?d a ex:Document }")?;
    println!("Documents (via subClassOf chain): {}", docs.len());
    assert_eq!(docs.len(), 2);

    let refs =
        engine.execute("PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:references ?y }")?;
    println!("references (via subPropertyOf): {}", refs.len());
    assert_eq!(refs.len(), 1);

    let parents = engine
        .execute("PREFIX ex: <http://ex.org/> SELECT ?p WHERE { ex:alice ex:hasParent ?p }")?;
    let parent = parents
        .solutions()
        .unwrap()
        .solution(0)
        .unwrap()
        .get("p")
        .unwrap()
        .clone();
    println!("alice's invented parent (labelled null): {parent}");
    assert!(parent.is_bnode());
    Ok(())
}
