//! Quickstart: load a Turtle graph, run a SPARQL query through the
//! SPARQL → Warded Datalog± translation, print the solutions.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sparqlog::{QueryResults, SparqLog};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = SparqLog::new();
    engine.load_turtle(
        r#"
        @prefix ex: <http://ex.org/> .
        ex:tolkien ex:wrote ex:lotr ;
                   ex:name  "J. R. R. Tolkien" .
        ex:herbert ex:wrote ex:dune ;
                   ex:name  "Frank Herbert" .
        ex:lotr ex:title "The Lord of the Rings" ; ex:year 1954 .
        ex:dune ex:title "Dune" ; ex:year 1965 .
        "#,
    )?;

    let result = engine.execute(
        r#"
        PREFIX ex: <http://ex.org/>
        SELECT ?author ?title WHERE {
            ?a ex:wrote ?book ; ex:name ?author .
            ?book ex:title ?title ; ex:year ?y
            FILTER (?y > 1960)
        }
        ORDER BY ?author
        "#,
    )?;

    if let QueryResults::Solutions(s) = &result {
        println!("{} solution(s):", s.len());
    }
    // `QueryResults` renders as a tab-separated table (header + rows).
    println!("{result}");
    Ok(())
}
