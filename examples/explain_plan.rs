//! Explain: inspect the physical plan the cost-based planner (PR 6)
//! chooses for a query, and the statistics it chose it from.
//!
//! ```sh
//! cargo run --example explain_plan
//! ```
//!
//! The planner sits between the SPARQL → Datalog translation and the
//! evaluator: per-relation row counts and per-column distinct estimates
//! drive a greedy join order, and each probe records the exact
//! `(predicate, mask)` hash index it will use. `Snapshot::explain`
//! renders that plan; `Snapshot::stats` exposes the statistics.

use sparqlog::Store;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = Store::new();
    // A skewed graph: many `borders` edges, few `capital` facts — the
    // planner should start from the selective atom regardless of where
    // it sits in the query text.
    let mut turtle = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..200 {
        turtle.push_str(&format!("ex:c{i} ex:borders ex:c{} .\n", (i + 1) % 200));
        turtle.push_str(&format!("ex:c{i} ex:borders ex:c{} .\n", (i + 7) % 200));
    }
    turtle.push_str("ex:c0 ex:capital ex:k0 .\n");
    store.load_turtle(&turtle)?;

    let query = "PREFIX ex: <http://ex.org/>
                 SELECT ?n ?k WHERE { ?c ex:borders ?n . ?c ex:capital ?k }";
    let prepared = store.prepare(query)?;
    let snapshot = store.snapshot();

    // The statistics the plan is based on.
    let stats = snapshot.stats();
    let triple = snapshot.symbols().get("triple").expect("triple relation");
    let triple_stats = stats.relation(triple).expect("triple has statistics");
    println!(
        "triple relation: {} rows, per-column distinct estimates {:?}\n",
        triple_stats.rows, triple_stats.distinct
    );

    // The chosen physical plan: atom order, probe masks, estimates.
    println!("plan for:\n  {query}\n");
    println!("{}", snapshot.explain(&prepared)?);

    // Executing the prepared query reuses the cached plan — zero
    // planning work per execution until statistics drift.
    let before = snapshot.plans_computed();
    let result = snapshot.execute_prepared(&prepared)?;
    println!(
        "{} solution(s), plans computed during execution: {}",
        result.len(),
        snapshot.plans_computed() - before
    );
    Ok(())
}
