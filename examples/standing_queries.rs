//! Standing queries: subscribe to a prepared SELECT and receive exact
//! result deltas as the store commits.
//!
//! ```sh
//! cargo run --example standing_queries
//! ```

use sparqlog::{Store, SubscriptionEvent, Term};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = Store::new();
    store.load_turtle(
        r#"
        @prefix ex: <http://ex.org/> .
        ex:spain ex:borders ex:france .
        ex:france ex:borders ex:belgium .
        "#,
    )?;

    // A subscription is a prepared query plus a mailbox. The baseline
    // result is captured atomically with registration, so no commit can
    // fall between "what I saw" and "what I'll be told about".
    let neighbours = store.prepare(
        "PREFIX ex: <http://ex.org/>
         SELECT ?a ?b WHERE { ?a ex:borders ?b }",
    )?;
    let sub = store.subscribe(&neighbours)?;
    println!("baseline: {} border pairs\n", sub.initial().len());

    let ex = |l: &str| Term::iri(format!("http://ex.org/{l}"));

    // Commit 1: one new border. The subscriber gets exactly that row.
    let mut w = store.writer();
    w.insert(ex("belgium"), ex("borders"), ex("germany"));
    w.commit()?;

    // Commit 2: retract one, add one — a mixed delta.
    let mut w = store.writer();
    w.remove(ex("spain"), ex("borders"), ex("france"));
    w.insert(ex("germany"), ex("borders"), ex("austria"));
    w.commit()?;

    // Commit 3: touches an unrelated predicate. The registry's predicate
    // prefilter proves this subscription unaffected — no re-evaluation,
    // no delivery, and the commit sequence number simply skips ahead.
    let mut w = store.writer();
    w.insert(ex("spain"), ex("population"), Term::literal("47M"));
    w.commit()?;

    // Drain the mailbox. Deltas arrive in commit order; commits that
    // cannot change the result deliver nothing.
    while let Some(event) = sub.try_recv() {
        match event {
            SubscriptionEvent::Delta(delta) => {
                println!("commit #{}:", delta.commit_seq);
                for row in delta.added.canonical(false) {
                    println!("  + {}", row.join(" "));
                }
                for row in delta.removed.canonical(false) {
                    println!("  - {}", row.join(" "));
                }
            }
            SubscriptionEvent::Lagged(missed) => {
                // A slow consumer loses the *oldest* deltas, never the
                // newest, and is told how many — re-run the query to
                // resynchronise.
                println!("lagged: {missed} deltas dropped; resync with a fresh execute");
            }
        }
    }

    // Dropping the handle unregisters it; later commits do no work for it.
    drop(sub);
    println!("\nsubscriptions left: {}", store.subscription_count());
    Ok(())
}
