//! The unified `Store` lifecycle: load, snapshot, SPARQL 1.1 Update,
//! write sessions, and the incremental snapshot refresh underneath.
//!
//! ```sh
//! cargo run --example store_updates
//! ```

use sparqlog::{Store, Term};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = Store::new();

    // Bulk load = one write session under the hood.
    store.load_turtle(
        r#"
        @prefix ex: <http://ex.org/> .
        ex:spain ex:borders ex:france .
        ex:france ex:borders ex:belgium .
        ex:belgium ex:borders ex:germany .
        "#,
    )?;

    let reachable = "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders+ ?b }";

    // A snapshot is a cheap, version-stable read view: it will keep
    // answering from *this* version whatever the store does next.
    let v1 = store.snapshot();
    println!("v1 reachable from Spain:\n{}\n", v1.execute(reachable)?);

    // SPARQL 1.1 Update, end to end. Each operation commits a new
    // snapshot; the WHERE clause runs through the ordinary query
    // pipeline against the current one.
    let stats = store.update(
        r#"PREFIX ex: <http://ex.org/>
           INSERT DATA { ex:germany ex:borders ex:austria } ;
           DELETE { ?x ex:borders ?y } INSERT { ?y ex:linked ?x }
           WHERE { ?x ex:borders ?y . FILTER (?x = ex:belgium) }"#,
    )?;
    println!("update: +{} / -{} triples", stats.added, stats.removed);

    // Programmatic write session: stage, then commit atomically.
    let ex = |l: &str| Term::iri(format!("http://ex.org/{l}"));
    let mut writer = store.writer();
    writer.insert(ex("austria"), ex("borders"), ex("italy"));
    writer.remove(ex("spain"), ex("borders"), ex("france"));
    let stats = writer.commit()?;
    println!("writer: +{} / -{} triples", stats.added, stats.removed);

    // The pinned snapshot still sees version 1; the store sees the sum
    // of all commits.
    println!("\nv1 again (unchanged):\n{}", v1.execute(reachable)?);
    println!("\ncurrent:\n{}", store.execute(reachable)?);

    // Updates cannot sneak through read-only entry points.
    let err = v1.execute("CLEAR ALL").unwrap_err();
    println!("\nupdate on a snapshot: {err}");

    assert_eq!(v1.execute(reachable)?.len(), 3);
    assert_eq!(store.execute(reachable)?.len(), 0, "spain edge removed");
    Ok(())
}
