//! Mini compliance harness: runs the same queries on SparqLog, FusekiSim
//! and VirtuosoSim and reports agreement — the paper's majority-voting
//! methodology (Appendix D.2.2) in miniature.
//!
//! ```sh
//! cargo run --example compliance_check
//! ```

use sparqlog::{QueryResults, SparqLog};
use sparqlog_rdf::Dataset;
use sparqlog_refengine::{FusekiSim, VirtuosoSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = sparqlog_rdf::turtle::parse(
        r#"
        @prefix ex: <http://ex.org/> .
        ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:p ex:a .
        ex:a ex:q ex:c .
        "#,
    )?;
    let dataset = Dataset::from_default_graph(graph);

    let queries = [
        (
            "one-or-more over a cycle",
            "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ex:a ex:p+ ?y }",
        ),
        (
            "two-variable closure",
            "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p+ ?y }",
        ),
        (
            "alternative duplicates",
            "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ex:a (ex:p|ex:q) ?y . ex:a ex:q ?y }",
        ),
    ];

    let mut sl = SparqLog::new();
    sl.load_dataset(&dataset)?;
    let fu = FusekiSim::new(dataset.clone());
    let vi = VirtuosoSim::new(dataset);

    for (name, q) in queries {
        println!("--- {name}");
        let a = sl.execute(q)?;
        let b = fu.execute(q).map_err(|e| e.to_string());
        let c = vi.execute(q).map_err(|e| e.to_string());
        println!("  SparqLog: {} solutions", a.len());
        match &b {
            Ok(r) => println!(
                "  Fuseki:   {} solutions ({})",
                r.len(),
                if eq(&a, r) { "agrees" } else { "DISAGREES" }
            ),
            Err(e) => println!("  Fuseki:   error: {e}"),
        }
        match &c {
            Ok(r) => println!(
                "  Virtuoso: {} solutions ({})",
                r.len(),
                if eq(&a, r) { "agrees" } else { "DISAGREES" }
            ),
            Err(e) => println!("  Virtuoso: error: {e}"),
        }
    }
    Ok(())
}

fn eq(a: &QueryResults, b: &QueryResults) -> bool {
    match (a, b) {
        (QueryResults::Solutions(x), QueryResults::Solutions(y)) => x.multiset_eq(y),
        (QueryResults::Boolean(x), QueryResults::Boolean(y)) => x == y,
        _ => false,
    }
}
