//! The paper's property-path example (§4.2, Figures 3 & 4): countries
//! reachable from Spain via one or more `borders` edges — recursive
//! Datalog in action.
//!
//! ```sh
//! cargo run --example country_paths
//! ```

use sparqlog::SparqLog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = SparqLog::new();
    engine.load_turtle(
        r#"
        @prefix ex: <http://ex.org/> .
        ex:spain ex:borders ex:france .
        ex:france ex:borders ex:belgium .
        ex:france ex:borders ex:germany .
        ex:belgium ex:borders ex:germany .
        ex:germany ex:borders ex:austria .
        "#,
    )?;

    // Figure 3: one-or-more path.
    let result = engine.execute(
        r#"PREFIX ex: <http://ex.org/>
           SELECT ?B WHERE { ?A ex:borders+ ?B . FILTER (?A = ex:spain) }"#,
    )?;
    println!("Reachable from Spain via borders+ ({}):", result.len());
    for solution in result.solutions().unwrap().iter() {
        println!("  {}", solution.get("B").unwrap());
    }
    assert_eq!(result.len(), 4);

    // Zero-or-more includes Spain itself; zero-or-one covers the
    // zero-length edge case the paper fixes over earlier translations.
    let star = engine.execute(
        r#"PREFIX ex: <http://ex.org/>
           SELECT ?B WHERE { ex:spain ex:borders* ?B }"#,
    )?;
    println!("borders*: {} results (includes Spain itself)", star.len());

    let ghost = engine.execute(
        r#"PREFIX ex: <http://ex.org/>
           SELECT ?B WHERE { ex:atlantis ex:borders? ?B }"#,
    )?;
    println!(
        "borders? from a term not in the graph: {} result (the zero-length path)",
        ghost.len()
    );
    assert_eq!(ghost.len(), 1);
    Ok(())
}
