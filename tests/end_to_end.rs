//! Workspace-level integration tests: the full pipeline across every
//! crate — generators → parser → translation → Datalog engine → solution
//! extraction, cross-checked against the reference engines and the
//! BeSEPPI ground truth.

use sparqlog::{QueryResults, SparqLog};
use sparqlog_benchdata::{beseppi, feasible, gmark, sp2bench};
use sparqlog_rdf::Dataset;
use sparqlog_refengine::{EngineError, FusekiSim, VirtuosoSim};

/// SparqLog answers every BeSEPPI query with exactly the ground-truth
/// multiset — the paper's headline compliance claim (Table 3, SparqLog
/// column all zeros).
#[test]
fn beseppi_sparqlog_fully_compliant() {
    let dataset = Dataset::from_default_graph(beseppi::graph());
    let mut failures = Vec::new();
    for q in beseppi::queries() {
        let mut engine = SparqLog::new();
        engine.load_dataset(&dataset).unwrap();
        let result = engine.execute(&q.query).unwrap();
        let actual: Vec<Vec<sparqlog_rdf::Term>> = match &result {
            QueryResults::Boolean(_) => Vec::new(),
            QueryResults::Solutions(s) => s
                .rows
                .iter()
                .map(|r| r.iter().map(|c| c.clone().unwrap()).collect())
                .collect(),
            QueryResults::Graph(_) => unreachable!("BeSEPPI queries are SELECT/ASK"),
        };
        if beseppi::classify(&q.expected, &actual) != beseppi::Verdict::Correct {
            failures.push(format!("{}: {}", q.id, q.query));
        }
    }
    assert!(
        failures.is_empty(),
        "non-compliant queries:\n{}",
        failures.join("\n")
    );
}

/// FusekiSim is equally compliant (paper: "Fuseki and SparqLog produce
/// the correct result in all 236 cases").
#[test]
fn beseppi_fuseki_fully_compliant() {
    let dataset = Dataset::from_default_graph(beseppi::graph());
    let engine = FusekiSim::new(dataset);
    for q in beseppi::queries() {
        let result = engine.execute(&q.query).unwrap();
        let actual: Vec<Vec<sparqlog_rdf::Term>> = match &result {
            QueryResults::Boolean(_) => Vec::new(),
            QueryResults::Solutions(s) => s
                .rows
                .iter()
                .map(|r| r.iter().map(|c| c.clone().unwrap()).collect())
                .collect(),
            QueryResults::Graph(_) => unreachable!("BeSEPPI queries are SELECT/ASK"),
        };
        assert_eq!(
            beseppi::classify(&q.expected, &actual),
            beseppi::Verdict::Correct,
            "{}: {}",
            q.id,
            q.query
        );
    }
}

/// VirtuosoSim misbehaves only in the categories the paper reports:
/// alternative (incomplete), zero-or-one / one-or-more / zero-or-more
/// (errors + incompleteness) — and never on inverse/sequence/negated.
#[test]
fn beseppi_virtuoso_errs_in_the_right_places() {
    use beseppi::Category;
    let dataset = Dataset::from_default_graph(beseppi::graph());
    let engine = VirtuosoSim::new(dataset);
    let mut wrong_or_error_by_cat = std::collections::HashMap::new();
    for q in beseppi::queries() {
        let bad = match engine.execute(&q.query) {
            Err(_) => true,
            Ok(result) => {
                let actual: Vec<Vec<sparqlog_rdf::Term>> = match &result {
                    QueryResults::Boolean(_) => Vec::new(),
                    QueryResults::Solutions(s) => s
                        .rows
                        .iter()
                        .map(|r| r.iter().map(|c| c.clone().unwrap()).collect())
                        .collect(),
                    QueryResults::Graph(_) => {
                        unreachable!("BeSEPPI queries are SELECT/ASK")
                    }
                };
                beseppi::classify(&q.expected, &actual) != beseppi::Verdict::Correct
            }
        };
        if bad {
            *wrong_or_error_by_cat.entry(q.category).or_insert(0usize) += 1;
        }
    }
    for clean in [Category::Inverse, Category::Sequence, Category::Negated] {
        assert!(
            !wrong_or_error_by_cat.contains_key(&clean),
            "{clean:?} should be handled correctly by Virtuoso"
        );
    }
    for dirty in [
        Category::OneOrMore,
        Category::ZeroOrMore,
        Category::ZeroOrOne,
    ] {
        assert!(
            wrong_or_error_by_cat.get(&dirty).copied().unwrap_or(0) > 0,
            "{dirty:?} should show Virtuoso failures"
        );
    }
}

/// SP²Bench: SparqLog and FusekiSim agree on all 17 queries (paper §6.2:
/// "All 3 considered systems produce the correct result for all 17
/// queries"). Small instance for test speed; the binary runs the full
/// size.
#[test]
fn sp2bench_cross_engine_agreement() {
    let dataset = Dataset::from_default_graph(sp2bench::generate(sp2bench::Sp2bConfig {
        target_triples: 1_500,
        seed: 42,
    }));
    let fu = FusekiSim::new(dataset.clone());
    for (id, q) in sp2bench::queries() {
        let mut sl = SparqLog::new();
        sl.load_dataset(&dataset).unwrap();
        let a = sl
            .execute(&q)
            .unwrap_or_else(|e| panic!("{id}: SparqLog {e}"));
        let b = fu
            .execute(&q)
            .unwrap_or_else(|e| panic!("{id}: Fuseki {e}"));
        match (&a, &b) {
            (QueryResults::Boolean(x), QueryResults::Boolean(y)) => {
                assert_eq!(x, y, "{id}")
            }
            (QueryResults::Solutions(x), QueryResults::Solutions(y)) => {
                assert!(
                    x.multiset_eq(y),
                    "{id}: SparqLog {} rows vs Fuseki {} rows",
                    x.len(),
                    y.len()
                );
            }
            _ => panic!("{id}: result kinds differ"),
        }
    }
}

/// FEASIBLE: SparqLog and FusekiSim agree on every supported query
/// (paper §6.2: "both SparqLog and Fuseki fully comply ... on each of
/// the 77 queries").
#[test]
fn feasible_cross_engine_agreement() {
    let dataset = feasible::dataset(feasible::FeasibleConfig {
        people: 80,
        papers: 120,
        seed: 99,
    });
    let fu = FusekiSim::new(dataset.clone());
    for (id, q) in feasible::queries() {
        let mut sl = SparqLog::new();
        sl.load_dataset(&dataset).unwrap();
        let a = sl
            .execute(&q)
            .unwrap_or_else(|e| panic!("{id}: SparqLog {e}"));
        let b = fu
            .execute(&q)
            .unwrap_or_else(|e| panic!("{id}: Fuseki {e}"));
        match (&a, &b) {
            (QueryResults::Boolean(x), QueryResults::Boolean(y)) => {
                assert_eq!(x, y, "{id}")
            }
            (QueryResults::Solutions(x), QueryResults::Solutions(y)) => {
                assert!(
                    x.multiset_eq(y),
                    "{id}\n{q}\nSparqLog {} rows vs Fuseki {} rows",
                    x.len(),
                    y.len()
                );
            }
            _ => panic!("{id}: result kinds differ"),
        }
    }
}

/// gMark: on a small instance, SparqLog and FusekiSim agree on every
/// query of both scenarios (paper §6.3: "each time when both Fuseki and
/// SparqLog returned a result, the results were equal"), and Virtuoso
/// refuses the two-variable recursive ones.
#[test]
fn gmark_agreement_and_virtuoso_refusals() {
    for scenario in [gmark::Scenario::Social, gmark::Scenario::Test] {
        let dataset = Dataset::from_default_graph(gmark::generate(gmark::GmarkConfig {
            scenario,
            nodes: 150,
            seed: 5,
        }));
        let fu = FusekiSim::new(dataset.clone());
        let vi = VirtuosoSim::new(dataset.clone());
        let mut virtuoso_failures = 0usize;
        for (id, q) in gmark::queries(scenario) {
            let mut sl = SparqLog::new();
            sl.load_dataset(&dataset).unwrap();
            let a = sl
                .execute(&q)
                .unwrap_or_else(|e| panic!("{scenario:?} {id}: {e}"));
            let b = fu
                .execute(&q)
                .unwrap_or_else(|e| panic!("{scenario:?} {id}: {e}"));
            assert!(
                match (&a, &b) {
                    (QueryResults::Solutions(x), QueryResults::Solutions(y)) => x.multiset_eq(y),
                    (QueryResults::Boolean(x), QueryResults::Boolean(y)) => x == y,
                    _ => false,
                },
                "{scenario:?} {id}: engines disagree\n{q}"
            );
            match vi.execute(&q) {
                Err(EngineError::NotSupported(_)) => virtuoso_failures += 1,
                Err(_) => virtuoso_failures += 1,
                Ok(r) => {
                    let eq = match (&a, &r) {
                        (QueryResults::Solutions(x), QueryResults::Solutions(y)) => {
                            x.multiset_eq(y)
                        }
                        (QueryResults::Boolean(x), QueryResults::Boolean(y)) => x == y,
                        _ => false,
                    };
                    if !eq {
                        virtuoso_failures += 1;
                    }
                }
            }
        }
        assert!(
            virtuoso_failures >= 10,
            "{scenario:?}: Virtuoso should fail on a large fraction (got {virtuoso_failures}/50)"
        );
    }
}

/// The umbrella crate re-exports every subsystem.
#[test]
fn umbrella_reexports() {
    let _ = sparqlog_suite::rdf::Term::iri("http://x");
    let _ = sparqlog_suite::datalog::Database::new();
    let _ = sparqlog_suite::sparql::parse_query("SELECT * WHERE { ?s ?p ?o }").unwrap();
    let _ = sparqlog_suite::sparqlog::SparqLog::new();
    let _ = sparqlog_suite::benchdata::beseppi::graph();
}

/// Every query of every generated workload translates into a *warded*
/// program — the executable version of the paper's §5 claim that the
/// translation targets Warded Datalog±.
#[test]
fn all_benchmark_queries_translate_to_warded_programs() {
    use sparqlog::translate_query;
    use sparqlog_datalog::{check_wardedness, SymbolTable};
    use sparqlog_sparql::parse_query;

    let symbols = SymbolTable::new();
    let mut all: Vec<String> = Vec::new();
    all.extend(
        sparqlog_benchdata::sp2bench::queries()
            .into_iter()
            .map(|(_, q)| q),
    );
    all.extend(
        sparqlog_benchdata::feasible::queries()
            .into_iter()
            .map(|(_, q)| q),
    );
    all.extend(
        sparqlog_benchdata::gmark::queries(sparqlog_benchdata::gmark::Scenario::Social)
            .into_iter()
            .map(|(_, q)| q),
    );
    all.extend(
        sparqlog_benchdata::gmark::queries(sparqlog_benchdata::gmark::Scenario::Test)
            .into_iter()
            .map(|(_, q)| q),
    );
    all.extend(
        sparqlog_benchdata::beseppi::queries()
            .into_iter()
            .map(|q| q.query),
    );
    all.extend(
        sparqlog_benchdata::ontology::queries()
            .into_iter()
            .map(|(_, q)| q),
    );

    let mut checked = 0;
    for (i, q) in all.iter().enumerate() {
        let query = parse_query(q).unwrap_or_else(|e| panic!("query {i}: {e}"));
        let tq = translate_query(&query, &symbols, &format!("w{i}_"))
            .unwrap_or_else(|e| panic!("query {i}: {e}"));
        let report = check_wardedness(&tq.program, &symbols);
        assert!(
            report.warded,
            "query {i} not warded: {:?}\n{q}",
            report.violations
        );
        checked += 1;
    }
    assert!(
        checked > 400,
        "expected the full workload set, got {checked}"
    );
}
